// Package jobs is the crawld daemon's orchestration layer: a durable job
// registry, a bounded worker scheduler running many Algorithm-4 crawls
// concurrently, per-tenant budget/rate accounting with admission control,
// and the HTTP API that exposes it all.
//
// Every job owns a directory under <data>/jobs/<id>/ holding its wire
// spec + state (job.json), its input table (local.csv), its durability
// pair (cp.bin + cp.wal via internal/durable), and its enriched output
// (out.csv). Because the job record and the WAL are both on disk before a
// query is charged, a daemon crash — even SIGKILL — loses nothing: the
// recovery scan at startup re-queues every unfinished job and the engine
// resumes each one from its journal, producing output byte-identical to
// an uninterrupted run.
package jobs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"smartcrawl/internal/durable"
	"smartcrawl/internal/engine"
	"smartcrawl/internal/relational"
)

// State is a job's lifecycle state. Transitions:
//
//	queued → running → done | failed | canceled
//	running → queued          (daemon stopped mid-crawl; resumed at restart)
//	queued → canceled         (canceled before a worker picked it up)
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Spec is the wire form of a job submission (POST /jobs). It mirrors the
// smartcrawl CLI flags; zero fields take the same defaults the CLI has,
// so a job spec and a CLI invocation with matching inputs produce
// byte-identical results. The job's budget is its lifetime allowance:
// queries charged before a daemon restart stay charged after it.
type Spec struct {
	// Tenant attributes the job for budget/rate accounting. Defaults to
	// "default".
	Tenant string `json:"tenant,omitempty"`

	// LocalCSV is the local table, inline (CSV text). Exactly one of
	// LocalCSV and LocalPath is required.
	LocalCSV string `json:"local_csv,omitempty"`
	// LocalPath reads the local table from a server-side path instead;
	// requires the daemon's -allow-local-backends flag.
	LocalPath string `json:"local_path,omitempty"`

	// Hidden serves a server-side CSV through the in-process simulator;
	// requires -allow-local-backends. Exactly one of Hidden, URL, and
	// Interfaces selects the search interface.
	Hidden string `json:"hidden,omitempty"`
	// URL is a hiddenserver base URL.
	URL string `json:"url,omitempty"`
	// Interfaces is a federated spec (federate.ParseSpecs grammar);
	// hidden= backends inside it also require -allow-local-backends.
	Interfaces string `json:"interfaces,omitempty"`

	Budget       int     `json:"budget,omitempty"`
	K            int     `json:"k,omitempty"`
	RankColumn   *int    `json:"rank_column,omitempty"`
	Theta        float64 `json:"theta,omitempty"`
	SampleTarget int     `json:"sample_target,omitempty"`
	Strategy     string  `json:"strategy,omitempty"`
	Fuzzy        float64 `json:"fuzzy,omitempty"`
	Enrich       string  `json:"enrich,omitempty"` // comma-separated hidden columns

	Workers int    `json:"workers,omitempty"` // per-crawl pipeline workers
	Batch   int    `json:"batch,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// CorpusCache, when true, builds (once, streaming) and memory-maps an
	// on-disk corpus index in the job's state directory; selection then
	// runs out-of-core with byte-identical results. The cache survives
	// daemon restarts alongside the checkpoint.
	CorpusCache bool `json:"corpus_cache,omitempty"`
	// Shards partitions record-side selection state for parallel batch
	// removal; byte-identical results at any value, 0/1 = sequential.
	Shards int `json:"shards,omitempty"`
	// PoolSample mines the query pool over a reservoir sample of N
	// records with exact support recounting (requires corpus_cache).
	PoolSample int     `json:"pool_sample,omitempty"`
	Rate       float64 `json:"rate,omitempty"`
	Burst      int     `json:"burst,omitempty"`
	Retries    int     `json:"retries,omitempty"`

	Faults      string `json:"faults,omitempty"`
	FaultSeed   uint64 `json:"fault_seed,omitempty"`
	MaxAttempts int    `json:"max_attempts,omitempty"`
	Breaker     *int   `json:"breaker,omitempty"`

	// DeadlineMs bounds the job's crawl wall-clock end to end (per run:
	// a drain-resumed job gets a fresh allowance); 0 = none.
	DeadlineMs int `json:"deadline_ms,omitempty"`
	// QueryTimeoutMs bounds each dispatched search attempt; 0 = none.
	QueryTimeoutMs int `json:"query_timeout_ms,omitempty"`
	// RetryBudget caps requeues at this ratio of dispatches; 0 = uncapped.
	RetryBudget float64 `json:"retry_budget,omitempty"`
	// Health enables per-interface health scoring (federated specs only).
	Health bool `json:"health,omitempty"`

	Autosave *int   `json:"autosave,omitempty"`
	WALSync  string `json:"wal_sync,omitempty"`
}

// Request converts the spec into an engine request over the given local
// table, with the job's durability files rooted at dir. Zero spec fields
// inherit the CLI defaults; the budget is always a lifetime budget.
func (sp *Spec) Request(local *relational.Table, dir string) *engine.Request {
	d := engine.Defaults()
	req := &d
	req.Local = local
	req.Hidden = sp.Hidden
	req.URL = sp.URL
	req.Interfaces = sp.Interfaces
	req.TotalBudget = true
	req.Checkpoint = filepath.Join(dir, "cp.bin")
	req.WAL = filepath.Join(dir, "cp.wal")
	if sp.Budget != 0 {
		req.Budget = sp.Budget
	}
	if sp.K != 0 {
		req.K = sp.K
	}
	if sp.RankColumn != nil {
		req.RankColumn = *sp.RankColumn
	}
	if sp.Theta != 0 {
		req.Theta = sp.Theta
	}
	if sp.SampleTarget != 0 {
		req.SampleTarget = sp.SampleTarget
	}
	if sp.Strategy != "" {
		req.Strategy = sp.Strategy
	}
	req.Fuzzy = sp.Fuzzy
	if sp.Enrich != "" {
		req.EnrichColumns = strings.Split(sp.Enrich, ",")
	}
	if sp.Workers != 0 {
		req.Workers = sp.Workers
	}
	if sp.CorpusCache {
		req.CorpusCache = filepath.Join(dir, "corpus.scorp")
	}
	req.Shards = sp.Shards
	req.PoolSample = sp.PoolSample
	req.Batch = sp.Batch
	if sp.Seed != 0 {
		req.Seed = sp.Seed
	}
	req.Rate = sp.Rate
	if sp.Burst != 0 {
		req.Burst = sp.Burst
	}
	if sp.Retries != 0 {
		req.Retries = sp.Retries
	}
	req.Faults = sp.Faults
	if sp.FaultSeed != 0 {
		req.FaultSeed = sp.FaultSeed
	}
	req.MaxAttempts = sp.MaxAttempts
	if sp.Breaker != nil {
		req.Breaker = *sp.Breaker
	}
	req.Deadline = time.Duration(sp.DeadlineMs) * time.Millisecond
	req.QueryTimeout = time.Duration(sp.QueryTimeoutMs) * time.Millisecond
	req.RetryBudget = sp.RetryBudget
	req.Health = sp.Health
	if sp.Autosave != nil {
		req.Autosave = *sp.Autosave
	}
	if sp.WALSync != "" {
		req.WALSync = sp.WALSync
	}
	return req
}

// budget returns the spec's effective lifetime budget (the CLI default
// when unset) — the amount reserved against the tenant at admission.
func (sp *Spec) budget() int {
	if sp.Budget != 0 {
		return sp.Budget
	}
	return engine.Defaults().Budget
}

// usesLocalBackends reports whether the spec reaches into the daemon's
// filesystem: a server-side local table, a simulated hidden CSV, or a
// federated spec with hidden= members. Gated by Config.AllowLocal so a
// wire client cannot read arbitrary server paths by default.
func (sp *Spec) usesLocalBackends() bool {
	if sp.LocalPath != "" || sp.Hidden != "" {
		return true
	}
	// A cheap syntactic check is all the gate needs: hidden= only ever
	// introduces a filesystem path in the federate grammar.
	return strings.Contains(sp.Interfaces, "hidden=")
}

// Job is one enrichment job: the submitted spec plus its lifecycle state,
// persisted as job.json in the job's directory after every transition.
type Job struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Spec   Spec   `json:"spec"`
	State  State  `json:"state"`
	// Error holds the failure cause for StateFailed.
	Error string `json:"error,omitempty"`

	// Charged is the settled query spend so far — written when the job
	// finishes (or is drained mid-run) so tenant accounting survives
	// restarts without replaying journals.
	Charged int `json:"charged,omitempty"`
	// Enriched/LocalLen/Coverage summarize a done job's report.
	Enriched int     `json:"enriched,omitempty"`
	LocalLen int     `json:"local_len,omitempty"`
	Coverage float64 `json:"coverage,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Restarts counts daemon restarts that re-queued this job mid-run.
	Restarts int `json:"restarts,omitempty"`
}

// dir returns the job's directory under root.
func jobDir(root, id string) string { return filepath.Join(root, "jobs", id) }

// save persists the job record atomically (temp + fsync + rename), so a
// crash never leaves a torn job.json.
func (j *Job) save(root string) error {
	buf, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	return durable.WriteFileAtomic(filepath.Join(jobDir(root, j.ID), "job.json"), func(w io.Writer) error {
		_, err := w.Write(buf)
		return err
	})
}

// loadJob reads one persisted job record.
func loadJob(root, id string) (*Job, error) {
	buf, err := os.ReadFile(filepath.Join(jobDir(root, id), "job.json"))
	if err != nil {
		return nil, err
	}
	var j Job
	if err := json.Unmarshal(buf, &j); err != nil {
		return nil, fmt.Errorf("jobs: corrupt job.json for %s: %w", id, err)
	}
	if j.ID != id {
		return nil, fmt.Errorf("jobs: job.json for %s names id %q", id, j.ID)
	}
	return &j, nil
}

// scanJobs lists persisted job IDs in lexical order. IDs are zero-padded
// sequence numbers, so lexical order is submission order — the recovery
// scan re-queues jobs exactly as they were admitted.
func scanJobs(root string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(root, "jobs"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "j") {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}
