package jobs

import (
	"smartcrawl/internal/obs"
	"smartcrawl/internal/obs/promexport"
)

// CollectProm snapshots the daemon into a Prometheus scrape: the
// daemon-level families (job counts by state, draining flag, per-tenant
// committed budget, the tenant cap) plus the full per-job metric set of
// every running crawl, labeled job="<id>",tenant="<tenant>". Sample
// cardinality is bounded by the worker count — only running jobs carry a
// live obs sink. cmd/crawld mounts this as GET /metrics.
func (m *Manager) CollectProm(c *promexport.Collection) {
	m.mu.Lock()
	counts := map[State]int{}
	type runningJob struct {
		id, tenant string
		o          *obs.Obs
	}
	var running []runningJob
	for _, id := range m.order {
		j := m.jobs[id]
		counts[j.State]++
		if j.State == StateRunning && j.obs != nil {
			running = append(running, runningJob{j.ID, j.Tenant, j.obs})
		}
	}
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		c.Add("crawld_jobs", float64(counts[st]), promexport.Label{Name: "state", Value: string(st)})
	}
	var draining float64
	if m.draining {
		draining = 1
	}
	c.Add("crawld_draining", draining)
	for name, t := range m.tenants {
		c.Add("crawld_tenant_reserved_queries", float64(t.reserved),
			promexport.Label{Name: "tenant", Value: name})
	}
	c.Add("crawld_tenant_budget_cap_queries", float64(m.cfg.TenantBudget))
	for _, reason := range shedReasons {
		c.Add("crawld_shed_total", float64(m.shed[reason]),
			promexport.Label{Name: "reason", Value: reason})
	}
	c.Add("crawld_events_dropped_total", float64(m.eventsDropped.Load()))
	m.mu.Unlock()

	// Per-job collection happens outside m.mu: it reads only the sinks'
	// atomics, and a job that finishes mid-scrape just reports its final
	// counters.
	for _, rj := range running {
		c.CollectObs(rj.o,
			promexport.Label{Name: "job", Value: rj.id},
			promexport.Label{Name: "tenant", Value: rj.tenant})
	}
}
