package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"smartcrawl/internal/deepweb/httpapi"
	"smartcrawl/internal/hidden"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// TestServiceEndToEnd is the cross-surface acceptance test: a crawld
// service stack (jobs.Manager + jobs.Server) and a hiddenserver API run
// in-process; a job is submitted over HTTP against the hidden interface,
// polled to completion, and its enriched result and canonical checkpoint
// must be byte-identical to the same crawl run through the cmd/smartcrawl
// binary — for seeds 1-3. One engine, two surfaces, zero divergence.
func TestServiceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the smartcrawl binary; skipped in -short")
	}
	fixtures(t)

	// The smartcrawl CLI, built once.
	binDir := t.TempDir()
	bin := filepath.Join(binDir, "smartcrawl")
	if out, err := exec.Command("go", "build", "-o", bin, "smartcrawl/cmd/smartcrawl").CombinedOutput(); err != nil {
		t.Fatalf("building smartcrawl: %v\n%s", err, out)
	}

	// The hidden database behind a real HTTP interface, shared by both
	// surfaces. Stateless (no rate limit, no faults), so the two crawls
	// see identical responses.
	tk := tokenize.New()
	hf, err := os.Open(hiddenPath)
	if err != nil {
		t.Fatal(err)
	}
	hiddenTable, err := relational.ReadCSV("hidden", hf)
	hf.Close()
	if err != nil {
		t.Fatal(err)
	}
	db := hidden.New(hiddenTable, tk, 50, hidden.RankByNumericColumn(fixRankCol), hidden.ModeConjunctive)
	hsrv := httptest.NewServer(httpapi.NewServer(db, tk, nil).Handler())
	defer hsrv.Close()

	// The crawld service stack, in-process.
	dataDir := t.TempDir()
	m, err := Open(Config{Dir: dataDir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain()
	csrv := httptest.NewServer(NewServer(m).Handler())
	defer csrv.Close()

	for seed := uint64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Surface 1: the service. Submit over HTTP, poll, fetch.
			sp := Spec{
				LocalCSV:     localCSVStr,
				URL:          hsrv.URL,
				Budget:       30,
				SampleTarget: 40,
				Seed:         seed,
				Fuzzy:        0.6,
				Enrich:       "col2,col3",
				Batch:        4,
				Workers:      2,
			}
			buf, _ := json.Marshal(sp)
			resp, err := http.Post(csrv.URL+"/jobs", "application/json", bytes.NewReader(buf))
			if err != nil {
				t.Fatal(err)
			}
			var job Job
			if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit status %d", resp.StatusCode)
			}
			deadline := time.Now().Add(60 * time.Second)
			for {
				r, err := http.Get(csrv.URL + "/jobs/" + job.ID)
				if err != nil {
					t.Fatal(err)
				}
				if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
					t.Fatal(err)
				}
				r.Body.Close()
				if job.State.Terminal() {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("job stuck in %s", job.State)
				}
				time.Sleep(10 * time.Millisecond)
			}
			if job.State != StateDone {
				t.Fatalf("job finished %s: %s", job.State, job.Error)
			}
			r, err := http.Get(csrv.URL + "/jobs/" + job.ID + "/result")
			if err != nil {
				t.Fatal(err)
			}
			serviceOut, err := io.ReadAll(r.Body)
			r.Body.Close()
			if err != nil || r.StatusCode != http.StatusOK {
				t.Fatalf("result fetch: status %d, err %v", r.StatusCode, err)
			}
			serviceCP := canonicalCP(t, filepath.Join(dataDir, "jobs", job.ID, "cp.bin"))

			// Surface 2: the CLI, same inputs, same interface.
			cliDir := t.TempDir()
			cmd := exec.Command(bin,
				"-local", localPath,
				"-url", hsrv.URL,
				"-budget", "30", "-sample-target", "40",
				"-seed", strconv.FormatUint(seed, 10),
				"-fuzzy", "0.6", "-enrich", "col2,col3",
				"-batch", "4", "-workers", "2",
				"-checkpoint", filepath.Join(cliDir, "cp.bin"),
				"-wal", filepath.Join(cliDir, "cp.wal"),
				"-out", filepath.Join(cliDir, "out.csv"))
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("smartcrawl: %v\n%s", err, out)
			}
			cliOut, err := os.ReadFile(filepath.Join(cliDir, "out.csv"))
			if err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(serviceOut, cliOut) {
				t.Errorf("service result differs from the smartcrawl CLI output")
			}
			if !bytes.Equal(serviceCP, canonicalCP(t, filepath.Join(cliDir, "cp.bin"))) {
				t.Errorf("service checkpoint differs from the smartcrawl CLI checkpoint")
			}
			if job.Charged <= 0 || job.Charged > 30 {
				t.Errorf("charged %d, want in (0, 30]", job.Charged)
			}
		})
	}
}
