package jobs

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

// TestConcurrentJobsDeterminism is the scheduler-isolation oracle: N jobs
// with distinct seeds (and distinct per-crawl worker/batch shapes)
// running simultaneously under the shared worker pool must produce
// exactly the per-job outputs and canonical checkpoints they produce when
// run alone — for any scheduler worker count, i.e. any interleaving.
func TestConcurrentJobsDeterminism(t *testing.T) {
	fixtures(t)
	specs := []Spec{}
	for seed := uint64(1); seed <= 5; seed++ {
		sp := baseSpec(seed)
		// Vary the crawl shape so jobs interleave heterogeneously.
		sp.Workers = int(seed%3) + 1
		sp.Batch = int(seed%2) * 3
		specs = append(specs, sp)
	}

	// Solo references: each job alone in its own single-worker manager.
	type ref struct{ out, cp []byte }
	refs := make([]ref, len(specs))
	for i, sp := range specs {
		dir := t.TempDir()
		m, err := Open(Config{Dir: dir, Workers: 1, AllowLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		job, err := m.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		if got := waitState(t, m, job.ID); got.State != StateDone {
			t.Fatalf("solo job %d finished %s (%s)", i, got.State, got.Error)
		}
		refs[i] = ref{
			out: readJobFile(t, dir, job.ID, "out.csv"),
			cp:  canonicalCP(t, filepath.Join(dir, "jobs", job.ID, "cp.bin")),
		}
		m.Drain()
	}

	for _, poolWorkers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("pool=%d", poolWorkers), func(t *testing.T) {
			dir := t.TempDir()
			m, err := Open(Config{Dir: dir, Workers: poolWorkers, AllowLocal: true})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Drain()
			ids := make([]string, len(specs))
			for i, sp := range specs {
				job, err := m.Submit(sp)
				if err != nil {
					t.Fatal(err)
				}
				ids[i] = job.ID
			}
			for i, id := range ids {
				if got := waitState(t, m, id); got.State != StateDone {
					t.Fatalf("job %d finished %s (%s)", i, got.State, got.Error)
				}
				if !bytes.Equal(readJobFile(t, dir, id, "out.csv"), refs[i].out) {
					t.Errorf("job %d (seed %d): concurrent output differs from solo run", i, i+1)
				}
				if !bytes.Equal(canonicalCP(t, filepath.Join(dir, "jobs", id, "cp.bin")), refs[i].cp) {
					t.Errorf("job %d (seed %d): concurrent checkpoint differs from solo run", i, i+1)
				}
			}
		})
	}
}
