package jobs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/dataset"
	"smartcrawl/internal/relational"
)

// Shared fixture: one DBLP instance rendered to CSV, generated once.
var (
	fixtureOnce sync.Once
	fixtureErr  error
	localCSVStr string // inline form, for local_csv submissions
	localPath   string // file form, for local_path submissions
	hiddenPath  string
	fixRankCol  int
)

func fixtures(t *testing.T) {
	t.Helper()
	fixtureOnce.Do(func() {
		in, err := dataset.GenerateDBLP(dataset.DBLPConfig{
			CorpusSize: 1600, HiddenSize: 420, LocalSize: 110, Seed: 9,
		})
		if err != nil {
			fixtureErr = err
			return
		}
		fixRankCol = in.RankColumn
		dir, err := os.MkdirTemp("", "jobsfix-*")
		if err != nil {
			fixtureErr = err
			return
		}
		var buf bytes.Buffer
		if err := in.Local.WriteCSV(&buf); err != nil {
			fixtureErr = err
			return
		}
		localCSVStr = buf.String()
		localPath = filepath.Join(dir, "local.csv")
		hiddenPath = filepath.Join(dir, "hidden.csv")
		if err := os.WriteFile(localPath, buf.Bytes(), 0o644); err != nil {
			fixtureErr = err
			return
		}
		buf.Reset()
		if err := in.Hidden.WriteCSV(&buf); err != nil {
			fixtureErr = err
			return
		}
		fixtureErr = os.WriteFile(hiddenPath, buf.Bytes(), 0o644)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
}

// baseSpec is a fast, fully deterministic simulated-backend job.
func baseSpec(seed uint64) Spec {
	return Spec{
		LocalCSV: localCSVStr,
		Hidden:   hiddenPath,
		Budget:   24,
		Theta:    0.03,
		Seed:     seed,
		Batch:    4,
		Workers:  2,
	}
}

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, m *Manager, id string) *Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		j := m.Get(id)
		if j == nil {
			t.Fatalf("job %s disappeared", id)
		}
		if j.State.Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func readJobFile(t *testing.T, dir, id, name string) []byte {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join(dir, "jobs", id, name))
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// canonicalCP loads a checkpoint and re-serializes it at journal seq 0:
// raw snapshot bytes differ between runs compacted at different journal
// positions; the canonical form must not.
func canonicalCP(t *testing.T, path string) []byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := crawler.LoadResult(f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := crawler.SaveResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJobLifecycle walks one job through the happy path against the
// in-process simulator and checks the persisted artifacts.
func TestJobLifecycle(t *testing.T) {
	fixtures(t)
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, Workers: 1, AllowLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain()

	job, err := m.Submit(baseSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateQueued {
		t.Fatalf("fresh job state = %s, want queued", job.State)
	}
	done := waitState(t, m, job.ID)
	if done.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", done.State, done.Error)
	}
	if done.Charged <= 0 || done.Charged > 24 {
		t.Errorf("charged %d, want in (0, 24]", done.Charged)
	}
	if done.Enriched <= 0 || done.LocalLen != 110 {
		t.Errorf("report enriched=%d local_len=%d", done.Enriched, done.LocalLen)
	}
	out := readJobFile(t, dir, job.ID, "out.csv")
	if !bytes.Contains(out, []byte("h_")) {
		t.Errorf("enriched output has no h_ columns:\n%.200s", out)
	}
	// The enriched table must still parse and keep every local row.
	tab, err := relational.ReadCSV("out", bytes.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 110 {
		t.Errorf("output rows = %d, want 110", tab.Len())
	}
	if len(canonicalCP(t, filepath.Join(dir, "jobs", job.ID, "cp.bin"))) == 0 {
		t.Error("empty canonical checkpoint")
	}
	// Tenant settlement released the unspent reservation.
	if got := m.TenantReserved("default"); got != done.Charged {
		t.Errorf("tenant reserved = %d after settle, want charged %d", got, done.Charged)
	}
}

// TestJobEventsStream asserts the progress feed: every issued query
// appears exactly once, in order, with a strictly increasing seq, and the
// stream's cumulative coverage matches the final report.
func TestJobEventsStream(t *testing.T) {
	fixtures(t)
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, Workers: 1, AllowLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain()

	job, err := m.Submit(baseSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	// Stream from the start, following live until the job settles.
	var evs []StepEvent
	from := 1
	for {
		batch, st, ok := m.Steps(job.ID, from)
		if !ok {
			t.Fatal("job unknown to Steps")
		}
		evs = append(evs, batch...)
		if len(batch) > 0 {
			from = batch[len(batch)-1].Seq + 1
		}
		if st.Terminal() {
			break
		}
	}
	done := m.Get(job.ID)
	if done.State != StateDone {
		t.Fatalf("job finished %s, want done", done.State)
	}
	if len(evs) != done.Charged {
		t.Fatalf("streamed %d steps, job charged %d", len(evs), done.Charged)
	}
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Query == "" {
			t.Errorf("event %d has empty query", i)
		}
	}
	last := evs[len(evs)-1]
	if last.Cumulative != done.Enriched {
		t.Errorf("final cumulative coverage %d, report enriched %d", last.Cumulative, done.Enriched)
	}
	// A replay from an arbitrary offset returns the identical suffix.
	tail, st, _ := m.Steps(job.ID, len(evs)/2+1)
	if !st.Terminal() {
		t.Errorf("replay state = %s, want terminal", st)
	}
	for i, ev := range tail {
		if want := evs[len(evs)/2+i]; ev != want {
			t.Fatalf("replay event %d = %+v, want %+v", i, ev, want)
		}
	}
}

// TestCancelRunningJob cancels a paced job mid-crawl and expects a
// settled canceled state with a resumable checkpoint on disk.
func TestCancelRunningJob(t *testing.T) {
	fixtures(t)
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, Workers: 1, AllowLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain()

	sp := baseSpec(3)
	sp.Rate, sp.Burst = 50, 1 // ~20ms per query: plenty of time to cancel
	job, err := m.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually crawling (first step observed), then cancel.
	if _, st, ok := m.Steps(job.ID, 1); !ok || st.Terminal() {
		t.Fatalf("job settled before cancel (state %s)", st)
	}
	if !m.Cancel(job.ID) {
		t.Fatal("cancel refused")
	}
	done := waitState(t, m, job.ID)
	if done.State != StateCanceled {
		t.Fatalf("state after cancel = %s, want canceled", done.State)
	}
	if done.Charged <= 0 || done.Charged >= 24 {
		t.Errorf("canceled job charged %d, want partial spend", done.Charged)
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", job.ID, "cp.bin")); err != nil {
		t.Errorf("canceled job has no checkpoint: %v", err)
	}
	// Canceling a settled job is refused.
	if m.Cancel(job.ID) {
		t.Error("second cancel succeeded")
	}
}

// TestSubmitValidation exercises the misuse rejections that must be
// wire-level errors, not failed jobs.
func TestSubmitValidation(t *testing.T) {
	fixtures(t)
	m, err := Open(Config{Dir: t.TempDir(), Workers: 1, AllowLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain()
	mNoLocal, err := Open(Config{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mNoLocal.Drain()

	cases := []struct {
		name string
		mgr  *Manager
		mut  func(*Spec)
		want string
	}{
		{"no local", m, func(sp *Spec) { sp.LocalCSV, sp.LocalPath = "", "" }, "local_csv"},
		{"both locals", m, func(sp *Spec) { sp.LocalPath = localPath }, "local_csv"},
		{"no interface", m, func(sp *Spec) { sp.Hidden = "" }, "exactly one"},
		{"two interfaces", m, func(sp *Spec) { sp.URL = "http://localhost:1" }, "exactly one"},
		{"interfaces plus hidden", m, func(sp *Spec) { sp.Interfaces = "name=a,hidden=" + hiddenPath }, "replaces"},
		{"bad strategy", m, func(sp *Spec) { sp.Strategy = "psychic" }, "strategy"},
		{"bad workers", m, func(sp *Spec) { sp.Workers = -1 }, "Workers"},
		{"bad csv", m, func(sp *Spec) { sp.LocalCSV = "a,b\n\"torn" }, "parsing local_csv"},
		{"local backend gated", mNoLocal, func(*Spec) {}, "allow-local-backends"},
		{"federated hidden gated", mNoLocal, func(sp *Spec) {
			sp.Hidden = ""
			sp.Interfaces = "name=a,hidden=" + hiddenPath
		}, "allow-local-backends"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := baseSpec(1)
			tc.mut(&sp)
			if _, err := tc.mgr.Submit(sp); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Submit err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

// TestRecoveryScan restarts a manager over a populated data dir and
// checks the registry survives: finished jobs stay finished, their
// outputs intact, and the ID sequence continues without collision.
func TestRecoveryScan(t *testing.T) {
	fixtures(t)
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, Workers: 2, AllowLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Submit(baseSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(baseSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	outA := readJobFile(t, dir, waitState(t, m, a.ID).ID, "out.csv")
	waitState(t, m, b.ID)
	m.Drain()

	m2, err := Open(Config{Dir: dir, Workers: 2, AllowLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Drain()
	if got := len(m2.List()); got != 2 {
		t.Fatalf("recovered %d jobs, want 2", got)
	}
	if j := m2.Get(a.ID); j == nil || j.State != StateDone {
		t.Fatalf("job %s not done after restart: %+v", a.ID, j)
	}
	if !bytes.Equal(readJobFile(t, dir, a.ID, "out.csv"), outA) {
		t.Error("restart disturbed a finished job's output")
	}
	// Tenant accounting rebuilt from settled charges.
	ja, jb := m2.Get(a.ID), m2.Get(b.ID)
	if got := m2.TenantReserved("default"); got != ja.Charged+jb.Charged {
		t.Errorf("tenant reserved = %d, want %d", got, ja.Charged+jb.Charged)
	}
	// New submissions continue the ID sequence.
	c, err := m2.Submit(baseSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if c.ID <= b.ID {
		t.Errorf("new job ID %s does not extend sequence past %s", c.ID, b.ID)
	}
	if waitState(t, m2, c.ID).State != StateDone {
		t.Error("post-restart job did not complete")
	}
}

func TestMetricsSnapshot(t *testing.T) {
	fixtures(t)
	m, err := Open(Config{Dir: t.TempDir(), Workers: 1, TenantBudget: 1000, AllowLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain()
	job, err := m.Submit(baseSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, job.ID)
	snap := m.MetricsSnapshot()
	if snap["done"] != 1 {
		t.Errorf("snapshot done = %v, want 1", snap["done"])
	}
	tenants := snap["tenants"].(map[string]any)
	def := tenants["default"].(map[string]any)
	if def["cap"] != 1000 {
		t.Errorf("tenant cap = %v", def["cap"])
	}
	if fmt.Sprint(def["reserved"]) != fmt.Sprint(m.Get(job.ID).Charged) {
		t.Errorf("tenant reserved = %v, want settled charge %d", def["reserved"], m.Get(job.ID).Charged)
	}
}
