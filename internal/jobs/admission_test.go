package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// pacedSpec returns a job slow enough (~20ms/query) to still be live
// while the test exercises admission against it.
func pacedSpec(seed uint64) Spec {
	sp := baseSpec(seed)
	sp.Rate, sp.Burst = 50, 1
	return sp
}

// TestAdmissionControl is the table-driven admission matrix: queue caps,
// per-tenant budget exhaustion, per-tenant submission rate, and the
// draining gate, each with its settlement/recovery behaviour.
func TestAdmissionControl(t *testing.T) {
	fixtures(t)

	t.Run("queue cap", func(t *testing.T) {
		m, err := Open(Config{Dir: t.TempDir(), Workers: 1, QueueCap: 2, AllowLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Drain()
		a, err := m.Submit(pacedSpec(1)) // running, slow
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Submit(baseSpec(2)); err != nil { // queued
			t.Fatal(err)
		}
		if _, err := m.Submit(baseSpec(3)); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("third submit err = %v, want ErrQueueFull", err)
		}
		// Settled jobs free their slots.
		m.Cancel(a.ID)
		waitState(t, m, a.ID)
		if _, err := m.Submit(baseSpec(3)); err != nil {
			t.Fatalf("submit after settle: %v", err)
		}
	})

	t.Run("tenant budget", func(t *testing.T) {
		m, err := Open(Config{Dir: t.TempDir(), Workers: 1, TenantBudget: 50, AllowLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Drain()
		sp := pacedSpec(1) // budget 24, reserved in full while live
		a, err := m.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Submit(baseSpec(2)); err != nil { // 24+24 = 48 ≤ 50
			t.Fatal(err)
		}
		if _, err := m.Submit(baseSpec(3)); !errors.Is(err, ErrTenantBudget) {
			t.Fatalf("over-budget submit err = %v, want ErrTenantBudget", err)
		}
		// A different tenant has its own allowance.
		other := baseSpec(3)
		other.Tenant = "other"
		if _, err := m.Submit(other); err != nil {
			t.Fatalf("other tenant rejected: %v", err)
		}
		// Settlement releases the unspent reservation: cancel the paced
		// job early, let everything settle, and the freed budget admits a
		// job that would not have fit before.
		m.Cancel(a.ID)
		done := waitState(t, m, a.ID)
		if done.Charged >= 24 {
			t.Fatalf("canceled job charged %d, expected partial spend", done.Charged)
		}
		for _, j := range m.List() {
			if j.Tenant == "default" {
				waitState(t, m, j.ID)
			}
		}
		small := baseSpec(4)
		small.Budget = 2
		if _, err := m.Submit(small); err != nil {
			t.Fatalf("submit after settlement: %v", err)
		}
	})

	t.Run("tenant rate", func(t *testing.T) {
		m, err := Open(Config{Dir: t.TempDir(), Workers: 1, TenantRate: 0.001, TenantBurst: 1, AllowLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Drain()
		if _, err := m.Submit(baseSpec(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Submit(baseSpec(2)); !errors.Is(err, ErrTenantRate) {
			t.Fatalf("burst-exceeding submit err = %v, want ErrTenantRate", err)
		}
		// Rate limiting is per tenant, not global.
		other := baseSpec(2)
		other.Tenant = "other"
		if _, err := m.Submit(other); err != nil {
			t.Fatalf("other tenant throttled: %v", err)
		}
	})
}

// TestDrainSemantics is the drain-on-SIGTERM contract: no new job is
// admitted once draining, and no accepted job is lost — running crawls
// checkpoint and re-queue, queued jobs stay queued, and the next start
// completes all of them with the same results an undisturbed manager
// produces.
func TestDrainSemantics(t *testing.T) {
	fixtures(t)

	// References from an undisturbed manager.
	refDir := t.TempDir()
	rm, err := Open(Config{Dir: refDir, Workers: 1, AllowLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	refOut := make(map[uint64][]byte)
	for seed := uint64(1); seed <= 2; seed++ {
		job, err := rm.Submit(baseSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		if got := waitState(t, rm, job.ID); got.State != StateDone {
			t.Fatalf("reference job %s: %s", job.ID, got.Error)
		}
		refOut[seed] = readJobFile(t, refDir, job.ID, "out.csv")
	}
	rm.Drain()

	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, Workers: 1, AllowLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	sp := pacedSpec(1)
	running, err := m.Submit(sp) // slow: will be mid-crawl at drain
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(baseSpec(2)) // never starts before drain
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the first job is actually crawling, then drain.
	if _, st, ok := m.Steps(running.ID, 1); !ok || st.Terminal() {
		t.Fatalf("paced job settled early (%s)", st)
	}
	m.Drain()

	if !m.Draining() {
		t.Error("Draining() false after Drain")
	}
	if _, err := m.Submit(baseSpec(3)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit err = %v, want ErrDraining", err)
	}
	// Both jobs survived as queued — none lost, none still running.
	for _, id := range []string{running.ID, queued.ID} {
		if j := m.Get(id); j.State != StateQueued {
			t.Fatalf("job %s state after drain = %s, want queued", id, j.State)
		}
	}
	// The interrupted job checkpointed its partial progress.
	if got := m.Get(running.ID); got.Restarts != 0 {
		t.Errorf("drained job counts %d restarts before any restart", got.Restarts)
	}
	cp := filepath.Join(dir, "jobs", running.ID, "cp.bin")
	if len(canonicalCP(t, cp)) == 0 {
		t.Error("drained job has no checkpoint")
	}

	// Next start: both jobs resume and finish identical to undisturbed runs.
	m2, err := Open(Config{Dir: dir, Workers: 2, AllowLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Drain()
	for seed, id := range map[uint64]string{1: running.ID, 2: queued.ID} {
		if got := waitState(t, m2, id); got.State != StateDone {
			t.Fatalf("job %s after restart: %s (%s)", id, got.State, got.Error)
		}
		if !bytes.Equal(readJobFile(t, dir, id, "out.csv"), refOut[seed]) {
			t.Errorf("job %s (seed %d): drained+resumed output differs from undisturbed run", id, seed)
		}
	}
}

// TestHTTPAdmissionStatus maps the admission errors onto wire semantics:
// 429 with Retry-After for transient pressure, 429 without it for budget
// exhaustion, 503 while draining, 400 for misuse.
func TestHTTPAdmissionStatus(t *testing.T) {
	fixtures(t)
	m, err := Open(Config{
		Dir: t.TempDir(), Workers: 1, QueueCap: 1,
		TenantBudget: 30, RetryAfter: 7 * time.Second, AllowLocal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(m).Handler())
	defer srv.Close()
	defer m.Drain()

	post := func(sp Spec) *http.Response {
		t.Helper()
		buf, _ := json.Marshal(sp)
		resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post(pacedSpec(1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d, want 202", resp.StatusCode)
	}
	// Queue full → 429 with the configured Retry-After.
	resp := post(baseSpec(2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("queue-full Retry-After %q, want 7", got)
	}
	// Malformed → 400.
	if resp := post(Spec{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty spec status %d, want 400", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/jobs", strings.NewReader(`{"nope":1}`))
	req.Header.Set("Content-Type", "application/json")
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown-field spec status %d, want 400", raw.StatusCode)
	}

	// Budget exhaustion → 429 without a Retry-After hint. A fresh manager
	// (cap no longer binding) with a tiny tenant allowance.
	m2, err := Open(Config{Dir: t.TempDir(), Workers: 1, TenantBudget: 10, AllowLocal: true})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(NewServer(m2).Handler())
	defer srv2.Close()
	defer m2.Drain()
	buf, _ := json.Marshal(baseSpec(1)) // budget 24 > 10
	resp2, err := http.Post(srv2.URL+"/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Errorf("budget status %d, want 429", resp2.StatusCode)
	}
	if got := resp2.Header.Get("Retry-After"); got != "" {
		t.Errorf("budget rejection carries Retry-After %q", got)
	}

	// Draining → 503, and /healthz reports it.
	m.Drain()
	if resp := post(baseSpec(3)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining status %d, want 503", resp.StatusCode)
	}
	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var health map[string]string
	json.NewDecoder(hz.Body).Decode(&health)
	if health["status"] != "draining" {
		t.Errorf("healthz status %q, want draining", health["status"])
	}
}
