//go:build linux

package jobs

import "syscall"

// diskFree reports the bytes available to unprivileged writers on the
// filesystem holding path. ok is false when the probe itself fails (the
// admission check is then skipped rather than failing closed).
func diskFree(path string) (free int64, ok bool) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(path, &st); err != nil {
		return 0, false
	}
	return int64(st.Bavail) * st.Bsize, true
}
