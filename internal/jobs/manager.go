package jobs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb/httpapi"
	"smartcrawl/internal/durable"
	"smartcrawl/internal/engine"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
)

// Config configures a Manager.
type Config struct {
	// Dir is the daemon's data directory; jobs live under Dir/jobs/<id>/.
	Dir string
	// Workers bounds how many crawls run concurrently (default 2).
	Workers int
	// QueueCap bounds accepted-but-unfinished jobs (queued + running);
	// admission beyond it returns ErrQueueFull (→ 429). Default 64.
	QueueCap int
	// TenantBudget is each tenant's lifetime query budget across all its
	// jobs; 0 = unlimited. A submission whose budget does not fit the
	// tenant's remaining allowance is rejected.
	TenantBudget int
	// TenantRate/TenantBurst pace submissions per tenant (jobs/sec with a
	// token-bucket burst); 0 rate = unpaced.
	TenantRate  float64
	TenantBurst int
	// RetryAfter is the Retry-After hint attached to transient admission
	// rejections (queue full, rate). Default 1s.
	RetryAfter time.Duration
	// MinDiskFree sheds submissions while the data directory's filesystem
	// has fewer than this many bytes available (→ 503 + Retry-After):
	// admitting a job the journal cannot durably absorb would turn disk
	// exhaustion into data loss. 0 disables the check; it is also skipped
	// on platforms where free space cannot be measured.
	MinDiskFree int64
	// EventBuffer bounds each job's in-memory progress feed: once a job
	// holds this many unstreamed step events the oldest are evicted
	// (counted in crawld_events_dropped_total when no streamer had read
	// them). 0 defaults to 8192; negative = unbounded.
	EventBuffer int
	// AllowLocal permits specs that read the daemon's filesystem
	// (local_path, hidden=, federated hidden= members).
	AllowLocal bool
	// Log receives one line per job transition; nil discards.
	Log io.Writer
	// CrashPoint arms crash injection in every job's durability path
	// (crawld passes SMARTCRAWL_CRASH_AT through); empty disables.
	CrashPoint string
}

// Admission errors. ErrQueueFull and ErrTenantRate are transient (the
// HTTP layer sends 429 + Retry-After); ErrTenantBudget clears only when
// other jobs settle below their reservations (429 without the hint);
// ErrDraining means the daemon is shutting down (503).
var (
	ErrQueueFull    = errors.New("jobs: queue full")
	ErrTenantRate   = errors.New("jobs: tenant submission rate exceeded")
	ErrTenantBudget = errors.New("jobs: tenant budget exhausted")
	ErrDraining     = errors.New("jobs: daemon draining")
	// ErrDiskPressure sheds submissions while the data filesystem is below
	// Config.MinDiskFree (503 + Retry-After: transient, operator-fixable).
	ErrDiskPressure = errors.New("jobs: insufficient disk space for new jobs")
)

// shedReasons enumerates the admission shed classes exported as
// crawld_shed_total{reason=…}, in label order.
var shedReasons = []string{"budget", "disk", "draining", "queue", "rate"}

// tenant is one tenant's admission state.
type tenant struct {
	reserved int // committed budget: reservations of live jobs + settled charges
	bucket   *httpapi.TokenBucket
}

// job is the manager's in-memory view of one job: the persisted record
// (guarded by Manager.mu) plus the progress feed (guarded by its own
// mutex — lock ordering is always Manager.mu before job.mu).
type job struct {
	Job
	cancel context.CancelFunc // non-nil while running
	obs    *obs.Obs           // non-nil while running
	evCap  int                // step-buffer bound; <=0 = unbounded
	drops  *atomic.Int64      // manager-wide evicted-unread counter

	mu        sync.Mutex
	cond      *sync.Cond
	steps     []StepEvent
	stepBase  int   // events evicted from the front; steps[0] has seq stepBase+1
	maxRead   int   // highest seq any streamer has read
	feedState State // mirror of Job.State for streamers
	eof       bool  // no further events will arrive (terminal or drained)
}

// StepEvent is one progress event on a job's /events stream.
type StepEvent struct {
	Seq        int     `json:"seq"`
	Query      string  `json:"query"`
	Benefit    float64 `json:"benefit"`
	New        int     `json:"new"`
	Cumulative int     `json:"cum"`
	ResultSize int     `json:"k"`
	Iface      int     `json:"iface,omitempty"`
}

// feedUpdate publishes a state change to the job's streamers.
func (j *job) feedUpdate(st State, eof bool) {
	j.mu.Lock()
	j.feedState = st
	if eof {
		j.eof = true
	}
	j.cond.Broadcast()
	j.mu.Unlock()
}

// appendStep records one progress event and wakes streamers. Called from
// the crawl goroutine on every issued query. At the buffer bound the
// oldest event is evicted (slid out, so memory stays bounded); an
// eviction no streamer had read yet counts as a dropped event.
func (j *job) appendStep(s crawler.Step) {
	j.mu.Lock()
	if j.evCap > 0 && len(j.steps) >= j.evCap {
		if j.stepBase+1 > j.maxRead && j.drops != nil {
			j.drops.Add(1)
		}
		copy(j.steps, j.steps[1:])
		j.steps = j.steps[:len(j.steps)-1]
		j.stepBase++
	}
	j.steps = append(j.steps, StepEvent{
		Seq:        j.stepBase + len(j.steps) + 1,
		Query:      s.Query.Key(),
		Benefit:    s.EstimatedBenefit,
		New:        s.NewlyCovered,
		Cumulative: s.CumulativeCovered,
		ResultSize: s.ResultSize,
		Iface:      s.Iface,
	})
	j.cond.Broadcast()
	j.mu.Unlock()
}

// Manager owns the job registry, the worker pool, and tenant accounting.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for listing
	queue    []string // FIFO of queued job IDs
	tenants  map[string]*tenant
	nextSeq  int
	draining bool
	shed     map[string]int64 // admission rejections by shedReasons class
	wake     *sync.Cond       // workers wait here for queue entries

	eventsDropped atomic.Int64 // step events evicted before any read

	wg sync.WaitGroup
}

// Open creates (or reopens) a manager over cfg.Dir, runs the recovery
// scan, and starts the worker pool. Jobs found queued — or running, i.e.
// the previous daemon died mid-crawl — are re-queued in submission order;
// their crawls resume from their WALs, so a restart completes every
// accepted job with results identical to an uninterrupted run.
func Open(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	if cfg.EventBuffer == 0 {
		cfg.EventBuffer = 8192
	}
	m := &Manager{
		cfg:     cfg,
		jobs:    make(map[string]*job),
		tenants: make(map[string]*tenant),
		shed:    make(map[string]int64),
	}
	m.wake = sync.NewCond(&m.mu)

	ids, err := scanJobs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		rec, err := loadJob(cfg.Dir, id)
		if err != nil {
			return nil, err
		}
		j := &job{Job: *rec, evCap: cfg.EventBuffer, drops: &m.eventsDropped}
		j.cond = sync.NewCond(&j.mu)
		if n := seqOf(id); n >= m.nextSeq {
			m.nextSeq = n + 1
		}
		// A job persisted as running was in flight when the daemon died:
		// its WAL holds everything it absorbed, so it resumes as queued.
		if j.State == StateRunning {
			j.State = StateQueued
			j.Restarts++
			if err := j.save(cfg.Dir); err != nil {
				return nil, err
			}
			fmt.Fprintf(cfg.Log, "jobs: %s interrupted by restart, re-queued (restart #%d)\n", id, j.Restarts)
		}
		j.feedState = j.State
		j.eof = j.State.Terminal()
		m.jobs[id] = j
		m.order = append(m.order, id)
		if j.State == StateQueued {
			m.queue = append(m.queue, id)
		}
		// Rebuild tenant accounting: finished jobs hold their settled
		// charge, live jobs their full reservation.
		t := m.tenantLocked(j.Tenant)
		if j.State.Terminal() {
			t.reserved += j.Charged
		} else {
			t.reserved += j.Spec.budget()
		}
	}
	if n := len(m.queue); n > 0 {
		fmt.Fprintf(cfg.Log, "jobs: recovery scan: %d jobs re-queued\n", n)
	}

	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// tenantLocked returns (creating if needed) the accounting entry. Caller
// holds m.mu (or is still single-goroutine inside Open).
func (m *Manager) tenantLocked(name string) *tenant {
	t := m.tenants[name]
	if t == nil {
		t = &tenant{}
		if m.cfg.TenantRate > 0 {
			burst := m.cfg.TenantBurst
			if burst <= 0 {
				burst = 1
			}
			t.bucket = httpapi.NewTokenBucket(burst, m.cfg.TenantRate)
		}
		m.tenants[name] = t
	}
	return t
}

func seqOf(id string) int {
	var n int
	fmt.Sscanf(id, "j%d", &n)
	return n
}

// Submit validates and admits a job. The spec's budget is reserved
// against the tenant and the job is persisted before Submit returns —
// admission is the commit point: an accepted job survives any crash.
func (m *Manager) Submit(sp Spec) (*Job, error) {
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	if (sp.LocalCSV == "") == (sp.LocalPath == "") {
		return nil, errors.New("jobs: exactly one of local_csv and local_path is required")
	}
	if !m.cfg.AllowLocal && sp.usesLocalBackends() {
		return nil, errors.New("jobs: spec reads server-side files (local_path/hidden=); daemon runs without -allow-local-backends")
	}

	// Parse the table and validate the whole request up front, so a
	// malformed submission is a 400, not a later failed job.
	local, err := loadLocal(&sp)
	if err != nil {
		return nil, err
	}
	if err := sp.Request(local, m.cfg.Dir).Validate(); err != nil {
		return nil, err
	}

	// Overload shedding: disk headroom is probed outside the lock (it is
	// a syscall), everything else under it. Each rejection is attributed
	// to its reason for crawld_shed_total.
	diskLow := false
	if m.cfg.MinDiskFree > 0 {
		if free, ok := diskFree(m.cfg.Dir); ok && free < m.cfg.MinDiskFree {
			diskLow = true
		}
	}
	m.mu.Lock()
	if m.draining {
		m.shed["draining"]++
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if diskLow {
		m.shed["disk"]++
		m.mu.Unlock()
		return nil, ErrDiskPressure
	}
	live := 0
	for _, j := range m.jobs {
		if !j.State.Terminal() {
			live++
		}
	}
	if live >= m.cfg.QueueCap {
		m.shed["queue"]++
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	t := m.tenantLocked(sp.Tenant)
	if t.bucket != nil && !t.bucket.Allow() {
		m.shed["rate"]++
		m.mu.Unlock()
		return nil, ErrTenantRate
	}
	if m.cfg.TenantBudget > 0 && t.reserved+sp.budget() > m.cfg.TenantBudget {
		m.shed["budget"]++
		m.mu.Unlock()
		return nil, ErrTenantBudget
	}
	t.reserved += sp.budget()
	id := fmt.Sprintf("j%06d", m.nextSeq)
	m.nextSeq++
	m.mu.Unlock()

	j := &job{Job: Job{
		ID:      id,
		Tenant:  sp.Tenant,
		Spec:    sp,
		State:   StateQueued,
		Created: time.Now().UTC(),
	}, evCap: m.cfg.EventBuffer, drops: &m.eventsDropped}
	j.cond = sync.NewCond(&j.mu)
	j.feedState = StateQueued

	// Persist the job before acknowledging it: directory, input table,
	// record. From here a crash cannot lose the job.
	dir := jobDir(m.cfg.Dir, id)
	persist := func() error {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		if sp.LocalCSV != "" {
			if err := os.WriteFile(filepath.Join(dir, "local.csv"), []byte(sp.LocalCSV), 0o644); err != nil {
				return err
			}
		}
		return j.save(m.cfg.Dir)
	}
	if err := persist(); err != nil {
		m.mu.Lock()
		t.reserved -= sp.budget()
		m.mu.Unlock()
		return nil, err
	}

	m.mu.Lock()
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.queue = append(m.queue, id)
	// Copy the record before a worker can claim the job: once it is on
	// the queue its state belongs to the scheduler.
	rec := j.Job
	m.wake.Signal()
	m.mu.Unlock()
	fmt.Fprintf(m.cfg.Log, "jobs: %s admitted (tenant %s, budget %d)\n", id, sp.Tenant, sp.budget())
	return &rec, nil
}

// loadLocal materializes the job's local table from its spec.
func loadLocal(sp *Spec) (*relational.Table, error) {
	if sp.LocalPath != "" {
		return engine.LoadTable(sp.LocalPath, "local")
	}
	t, err := relational.ReadCSV("local", strings.NewReader(sp.LocalCSV))
	if err != nil {
		return nil, fmt.Errorf("jobs: parsing local_csv: %w", err)
	}
	return t, nil
}

// Get returns a copy of the job record, or nil.
func (m *Manager) Get(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil
	}
	rec := j.Job
	return &rec
}

// List returns copies of every job record in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		rec := m.jobs[id].Job
		out = append(out, &rec)
	}
	return out
}

// ResultPath returns the enriched-output path for a done job, or "".
func (m *Manager) ResultPath(id string) string {
	if j := m.Get(id); j != nil && j.State == StateDone {
		return filepath.Join(jobDir(m.cfg.Dir, id), "out.csv")
	}
	return ""
}

// CheckpointPath returns the job's checkpoint path (it exists once the
// crawl has compacted at least once), or "".
func (m *Manager) CheckpointPath(id string) string {
	if j := m.Get(id); j != nil {
		return filepath.Join(jobDir(m.cfg.Dir, id), "cp.bin")
	}
	return ""
}

// Cancel cancels a job: queued jobs transition to canceled immediately,
// running jobs get their context cancelled — the engine drains in-flight
// queries and checkpoints the partial state before the worker settles the
// job as canceled. Returns false for unknown or already-terminal jobs.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil || j.State.Terminal() {
		m.mu.Unlock()
		return false
	}
	if j.State == StateQueued {
		m.dequeueLocked(id)
		m.finishLocked(j, StateCanceled, "", nil)
		m.mu.Unlock()
		return true
	}
	cancel := j.cancel
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// dequeueLocked removes id from the FIFO. Caller holds m.mu.
func (m *Manager) dequeueLocked(id string) {
	for i, q := range m.queue {
		if q == id {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return
		}
	}
}

// Drain stops the manager gracefully: no new submissions are admitted,
// running crawls are interrupted at their next round boundary (in-flight
// queries drain and partial state is checkpointed), and interrupted jobs
// are persisted back to queued so the next daemon start resumes them.
// Blocks until every worker has parked. No accepted job is lost.
func (m *Manager) Drain() {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.draining = true
	for _, j := range m.jobs {
		if j.cancel != nil {
			j.cancel()
		}
		// Unblock streamers of jobs that will not produce further events
		// in this process (running jobs settle through their worker).
		if j.State == StateQueued {
			j.feedUpdate(StateQueued, true)
		}
	}
	m.wake.Broadcast()
	queued := len(m.queue)
	m.mu.Unlock()
	m.wg.Wait()
	fmt.Fprintf(m.cfg.Log, "jobs: drained (%d jobs held for next start)\n", queued)
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// RetryAfter is the transient-rejection hint the HTTP layer advertises.
func (m *Manager) RetryAfter() time.Duration { return m.cfg.RetryAfter }

// TenantReserved returns a tenant's committed budget (live reservations
// plus settled charges).
func (m *Manager) TenantReserved(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t := m.tenants[name]; t != nil {
		return t.reserved
	}
	return 0
}

// MetricsSnapshot renders the manager's state for /debug/vars: state
// gauges, per-tenant accounting, and each running job's compact crawl
// metrics.
func (m *Manager) MetricsSnapshot() map[string]any {
	m.mu.Lock()
	defer m.mu.Unlock()
	counts := map[State]int{}
	jobsVar := map[string]any{}
	for _, id := range m.order {
		j := m.jobs[id]
		counts[j.State]++
		if j.State == StateRunning && j.obs != nil {
			jobsVar[id] = j.obs.SnapshotBrief()
		}
	}
	tenants := map[string]any{}
	for name, t := range m.tenants {
		tenants[name] = map[string]any{"reserved": t.reserved, "cap": m.cfg.TenantBudget}
	}
	shed := map[string]int64{}
	for _, r := range shedReasons {
		shed[r] = m.shed[r]
	}
	return map[string]any{
		"queued":         counts[StateQueued],
		"running":        counts[StateRunning],
		"done":           counts[StateDone],
		"failed":         counts[StateFailed],
		"canceled":       counts[StateCanceled],
		"draining":       m.draining,
		"shed":           shed,
		"events_dropped": m.eventsDropped.Load(),
		"tenants":        tenants,
		"jobs":           jobsVar,
	}
}

// worker is the scheduler loop: pop the oldest queued job, run its crawl,
// settle it, repeat. Parks on m.wake when the queue is empty; exits when
// the manager drains.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.draining {
			m.wake.Wait()
		}
		if m.draining {
			m.mu.Unlock()
			return
		}
		id := m.queue[0]
		m.queue = m.queue[1:]
		j := m.jobs[id]
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		j.obs = obs.New()
		now := time.Now().UTC()
		j.State = StateRunning
		j.Started = &now
		saveErr := j.save(m.cfg.Dir)
		if saveErr != nil {
			// The data dir failed us; fail the job rather than crash the
			// scheduler.
			m.finishLocked(j, StateFailed, saveErr.Error(), nil)
			m.mu.Unlock()
			cancel()
			continue
		}
		m.mu.Unlock()
		j.feedUpdate(StateRunning, false)

		fmt.Fprintf(m.cfg.Log, "jobs: %s running\n", id)
		out, err := m.crawl(j, ctx)
		cancel()

		m.mu.Lock()
		switch {
		case err != nil:
			m.finishLocked(j, StateFailed, err.Error(), nil)
		case out.Interrupted && m.draining:
			// Interrupted by drain: the WAL holds everything absorbed, so
			// the job goes back to queued and the next start resumes it.
			j.State = StateQueued
			j.cancel = nil
			j.obs = nil
			m.queue = append(m.queue, id)
			if err := j.save(m.cfg.Dir); err != nil {
				fmt.Fprintf(m.cfg.Log, "jobs: %s re-queue save failed: %v\n", id, err)
			}
			fmt.Fprintf(m.cfg.Log, "jobs: %s interrupted by drain, re-queued\n", id)
			j.feedUpdate(StateQueued, true)
		case out.Interrupted:
			// Interrupted by a user cancel: settle as canceled; the
			// partial enrichment and checkpoint stay on disk.
			m.finishLocked(j, StateCanceled, "", out)
		default:
			m.finishLocked(j, StateDone, "", out)
		}
		m.mu.Unlock()
	}
}

// crawl runs the engine for one job: local table from the job dir, the
// job's own checkpoint/WAL pair, progress fanned into the step feed.
func (m *Manager) crawl(j *job, ctx context.Context) (*engine.Outcome, error) {
	dir := jobDir(m.cfg.Dir, j.ID)
	sp := &j.Spec
	var (
		local *relational.Table
		err   error
	)
	if sp.LocalPath != "" {
		local, err = engine.LoadTable(sp.LocalPath, "local")
	} else {
		local, err = engine.LoadTable(filepath.Join(dir, "local.csv"), "local")
	}
	if err != nil {
		return nil, err
	}
	req := sp.Request(local, dir)
	req.Context = ctx
	req.Obs = j.obs
	req.CrashPoint = m.cfg.CrashPoint
	req.OnStep = j.appendStep
	out, err := engine.Run(req)
	if err != nil {
		return nil, err
	}
	// Persist the enriched table before the job is marked done, so a
	// crash between the two at worst re-derives it on resume.
	if err := durable.WriteFileAtomic(filepath.Join(dir, "out.csv"), func(w io.Writer) error {
		return out.Local.WriteCSV(w)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// finishLocked settles a job into a terminal state and releases the
// unspent part of its tenant reservation. Caller holds m.mu.
func (m *Manager) finishLocked(j *job, st State, errMsg string, out *engine.Outcome) {
	now := time.Now().UTC()
	j.State = st
	j.Error = errMsg
	j.Finished = &now
	j.cancel = nil
	j.obs = nil
	if out != nil && out.Report != nil {
		// Charged is the lifetime query spend (cumulative across daemon
		// restarts) — the tenant settlement measure.
		j.Charged = out.Report.QueriesIssued
		j.Enriched = out.Report.Enriched
		j.LocalLen = out.Local.Len()
		j.Coverage = out.Report.Coverage
	}
	if t := m.tenants[j.Tenant]; t != nil {
		t.reserved -= j.Spec.budget() - j.Charged
	}
	if err := j.save(m.cfg.Dir); err != nil {
		// The settle record could not be made durable. A job reported done
		// on a record a restart cannot read would silently re-run and
		// double-charge, so escalate: the job fails loudly instead.
		if st == StateDone {
			j.State = StateFailed
			j.Error = fmt.Sprintf("jobs: persisting settled state: %v", err)
			if err2 := j.save(m.cfg.Dir); err2 != nil {
				fmt.Fprintf(m.cfg.Log, "jobs: %s FAILURE RECORD ALSO UNWRITABLE: %v\n", j.ID, err2)
			}
		}
		fmt.Fprintf(m.cfg.Log, "jobs: %s settle save failed (state %s): %v\n", j.ID, j.State, err)
	}
	fmt.Fprintf(m.cfg.Log, "jobs: %s %s (charged %d)\n", j.ID, j.State, j.Charged)
	j.feedUpdate(j.State, true)
}

// Steps returns the job's progress events from seq (1-based, inclusive)
// on, blocking until at least one newer event exists or no further
// events will arrive in this process (terminal state, or re-queued by a
// drain). The returned state is the job's streamer-visible state at read
// time; ok is false for unknown jobs.
func (m *Manager) Steps(id string, from int) (evs []StepEvent, st State, ok bool) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return nil, "", false
	}
	if from < 1 {
		from = 1
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.stepBase+len(j.steps) < from && !j.eof {
		j.cond.Wait()
	}
	// Events before stepBase were evicted by the buffer bound; a reader
	// asking for them resumes at the oldest retained event (the gap shows
	// up in the seq numbers and in crawld_events_dropped_total).
	start := from - 1 - j.stepBase
	if start < 0 {
		start = 0
	}
	if start > len(j.steps) {
		start = len(j.steps)
	}
	evs = make([]StepEvent, len(j.steps)-start)
	copy(evs, j.steps[start:])
	if last := j.stepBase + len(j.steps); last > j.maxRead {
		j.maxRead = last
	}
	return evs, j.feedState, true
}

// ShedCounts returns the admission rejections recorded so far, keyed by
// shed reason (every reason present, zero-valued when never hit).
func (m *Manager) ShedCounts() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(shedReasons))
	for _, r := range shedReasons {
		out[r] = m.shed[r]
	}
	return out
}

// EventsDropped returns the step events evicted from bounded job feeds
// before any streamer read them.
func (m *Manager) EventsDropped() int64 { return m.eventsDropped.Load() }
