package estimator

import (
	"math"
	"testing"
)

func overflowStats() Stats {
	// |q(Hs)|/θ = 40/0.01 = 4000 > k → overflow; |q(D)| = 200.
	return Stats{FreqD: 200, FreqSample: 40, MatchSample: 2, Theta: 0.01, K: 100}
}

func TestWeightedBiasedReducesToBiasedAtOmegaOne(t *testing.T) {
	s := overflowStats()
	want := (Biased{}).Benefit(s) // 200·100·0.01/40 = 5
	got := WeightedBiased{Omega: 1}.Benefit(s)
	// Central Fisher mean equals n·k/N exactly.
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("ω=1 benefit %v, biased %v", got, want)
	}
	// Omega ≤ 0 behaves like 1.
	if math.Abs(WeightedBiased{}.Benefit(s)-want) > 0.02 {
		t.Fatal("zero omega should default to 1")
	}
}

func TestWeightedBiasedMonotoneInOmega(t *testing.T) {
	s := overflowStats()
	prev := -1.0
	for _, omega := range []float64{0.5, 1, 2, 4, 8} {
		v := WeightedBiased{Omega: omega}.Benefit(s)
		if v <= prev {
			t.Fatalf("benefit not increasing in ω: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestWeightedBiasedSolidUnaffected(t *testing.T) {
	s := Stats{FreqD: 7, FreqSample: 0, Theta: 0.01, K: 100}
	for _, omega := range []float64{0.5, 1, 4} {
		if got := (WeightedBiased{Omega: omega}).Benefit(s); got != 7 {
			t.Fatalf("solid benefit at ω=%v is %v, want 7", omega, got)
		}
	}
}

func TestWeightedBiasedBounds(t *testing.T) {
	s := overflowStats()
	for _, omega := range []float64{0.25, 1, 16} {
		v := WeightedBiased{Omega: omega}.Benefit(s)
		if v < 0 || v > float64(s.K) {
			t.Fatalf("ω=%v benefit %v outside [0, k]", omega, v)
		}
	}
}

func TestWeightedBiasedAlphaFallback(t *testing.T) {
	s := Stats{FreqD: 500, FreqSample: 0, Theta: 0.005, K: 100, Alpha: 0.1}
	base := WeightedBiased{Omega: 1}.Benefit(s)
	if math.Abs(base-float64(s.K)*s.Alpha) > 1e-9 {
		t.Fatalf("ω=1 fallback = %v, want kα = %v", base, float64(s.K)*s.Alpha)
	}
	if up := (WeightedBiased{Omega: 4}).Benefit(s); up <= base {
		t.Fatalf("ω=4 fallback %v should exceed ω=1 fallback %v", up, base)
	}
}

func TestWeightedBiasedName(t *testing.T) {
	if (WeightedBiased{}).Name() != "weighted-biased" {
		t.Fatal("name")
	}
}
