package estimator

import (
	"fmt"
	"math"
	"testing"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/fixture"
	"smartcrawl/internal/index"
	"smartcrawl/internal/match"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// statsFor computes Stats for query q in the running-example universe.
func statsFor(t *testing.T, u *fixtureUniverse, q deepweb.Query) Stats {
	t.Helper()
	freqD := u.invD.Count(q)
	freqS := u.invS.Count(q)
	matchS := 0
	for _, sid := range u.invS.Lookup(q) {
		h := u.sampleRecs[sid]
		for _, did := range u.invD.Lookup(q) {
			if u.matcher.Match(u.localRecs[did], h) {
				matchS++
			}
		}
	}
	return Stats{
		FreqD:       freqD,
		FreqSample:  freqS,
		MatchSample: matchS,
		Theta:       u.theta,
		K:           u.k,
	}
}

type fixtureUniverse struct {
	invD, invS            *index.Inverted
	localRecs, sampleRecs []*relational.Record
	matcher               match.Matcher
	theta                 float64
	k                     int
}

func newFixtureUniverse() *fixtureUniverse {
	u := fixture.New()
	// Reindex sample records with their own dense IDs.
	sampleRecs := make([]*relational.Record, len(u.Sample.Records))
	copy(sampleRecs, u.Sample.Records)
	return &fixtureUniverse{
		invD:       index.BuildInverted(u.Local.Records, u.Tokenizer),
		invS:       index.BuildInverted(u.Sample.Records, u.Tokenizer),
		localRecs:  u.Local.Records,
		sampleRecs: sampleRecs,
		// Hidden records carry the extra rating attribute, so match
		// on the name column only.
		matcher: match.NewExactOn(u.Tokenizer, nil, []int{0}),
		theta:   u.Theta,
		k:       u.K,
	}
}

func TestRunningExampleBenefits(t *testing.T) {
	fu := newFixtureUniverse()
	b, ub := Biased{}, Unbiased{}

	cases := []struct {
		q            deepweb.Query
		wantOverflow bool
		wantBiased   float64
		wantUnbiased float64
	}{
		// q1 = d1's name: not in sample → solid; biased = |q(D)| = 2
		// (d1 and d4 both contain thai/noodle/house).
		{deepweb.Query{"house", "noodle", "thai"}, false, 2, 0},
		// "thai house": |q(Hs)| = 1, 1/(1/3) = 3 > 2 → overflow.
		// |q(D)| = 3 (d1, d3, d4) → biased = 3·(2/3)/1 = 2.
		// Unbiased = |q(D) ∩̃ q(Hs)|·k/|q(Hs)| = 1·2/1 = 2 (Example 4's
		// form: h3 matches d3).
		{deepweb.Query{"house", "thai"}, true, 2, 2},
		// "house": |q(Hs)| = 2 ("Thai House", "Steak House") → 6 > 2
		// overflow. |q(D)| = 3 → biased = 3·(2/3)/2 = 1 (the paper's
		// Table 2 value for q5). Only h3~d3 matches → unbiased = 1·2/2 = 1.
		{deepweb.Query{"house"}, true, 1, 1},
		// "thai": |q(Hs)| = 1 → 3 > 2 overflow; |q(D)| = 3 →
		// biased = 3·(2/3)/1 = 2 (the paper's q6 estimate).
		{deepweb.Query{"thai"}, true, 2, 2},
		// "saigon ramen" = d2's name: not in sample → solid, biased = 1.
		{deepweb.Query{"ramen", "saigon"}, false, 1, 0},
	}
	for _, c := range cases {
		s := statsFor(t, fu, c.q)
		if got := PredictOverflow(s); got != c.wantOverflow {
			t.Errorf("PredictOverflow(%v) = %v, want %v (stats %+v)",
				c.q, got, c.wantOverflow, s)
		}
		if got := b.Benefit(s); math.Abs(got-c.wantBiased) > 1e-9 {
			t.Errorf("Biased(%v) = %v, want %v", c.q, got, c.wantBiased)
		}
		if got := ub.Benefit(s); math.Abs(got-c.wantUnbiased) > 1e-9 {
			t.Errorf("Unbiased(%v) = %v, want %v", c.q, got, c.wantUnbiased)
		}
	}
}

func TestFrequencyEstimator(t *testing.T) {
	f := Frequency{}
	if f.Name() != "frequency" {
		t.Fatal("name")
	}
	if got := f.Benefit(Stats{FreqD: 42, FreqSample: 100, Theta: 0.01, K: 5}); got != 42 {
		t.Fatalf("Frequency.Benefit = %v", got)
	}
}

func TestAlphaFallbackOverflowPrediction(t *testing.T) {
	// |q(Hs)| = 0 normally predicts solid; with α set and |q(D)|/α > k it
	// must flip to overflow, with biased benefit kα (§6.2).
	s := Stats{FreqD: 500, FreqSample: 0, Theta: 0.005, K: 100, Alpha: 0.1}
	// 500/0.1 = 5000 > 100 → overflow.
	if !PredictOverflow(s) {
		t.Fatal("alpha fallback should predict overflow")
	}
	if got := (Biased{}).Benefit(s); math.Abs(got-100*0.1) > 1e-12 {
		t.Fatalf("biased fallback benefit = %v, want kα = 10", got)
	}
	// Without alpha, prediction stays solid and benefit is |q(D)|.
	s.Alpha = 0
	if PredictOverflow(s) {
		t.Fatal("without alpha, zero sample frequency predicts solid")
	}
	if got := (Biased{}).Benefit(s); got != 500 {
		t.Fatalf("benefit = %v", got)
	}
}

func TestUnbiasedAlphaFallbackCapsAtK(t *testing.T) {
	s := Stats{FreqD: 500, FreqSample: 0, MatchSample: 3, Theta: 0.005, K: 100, Alpha: 0.1}
	// 3/0.005 = 600 > k → capped at k.
	if got := (Unbiased{}).Benefit(s); got != 100 {
		t.Fatalf("unbiased fallback = %v, want 100", got)
	}
}

func TestNames(t *testing.T) {
	if (Biased{}).Name() != "biased" || (Unbiased{}).Name() != "unbiased" {
		t.Fatal("estimator names")
	}
}

func TestTrueBenefitBias(t *testing.T) {
	if got := TrueBenefitBias(5, 100, 1000); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("bias = %v", got)
	}
	if got := TrueBenefitBias(5, 100, 0); got != 0 {
		t.Fatalf("bias with |q(H)|=0 = %v", got)
	}
}

// TestLemma3SolidUnbiasedness statistically validates Lemma 3: for a solid
// query, E over sample draws of |q(D) ∩ q(Hs)|/θ equals |q(D) ∩ q(H)|.
func TestLemma3SolidUnbiasedness(t *testing.T) {
	tk := tokenize.New()
	rng := stats.NewRNG(101)

	// Hidden database: 5000 records; 600 contain the query keyword pair.
	hid := relational.NewTable("h", []string{"doc"})
	for i := 0; i < 5000; i++ {
		if i < 600 {
			hid.Append(fmt.Sprintf("alpha beta filler%d", i))
		} else {
			hid.Append(fmt.Sprintf("gamma filler%d", i))
		}
	}
	// Local database: 300 of the 600 matching hidden records (exact
	// copies), so |q(D) ∩ q(H)| = 300.
	local := relational.NewTable("d", []string{"doc"})
	for i := 0; i < 300; i++ {
		local.Append(hid.Records[i].Value(0))
	}
	q := deepweb.Query{"alpha", "beta"}
	matcher := match.NewExact(tk)
	invD := index.BuildInverted(local.Records, tk)
	qD := invD.Lookup(q)

	const theta = 0.02
	const trials = 400
	joiner := match.NewJoiner(recordsAt(local.Records, qD), tk, matcher)
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		smp := sample.Bernoulli(hid, theta, rng.Split())
		// Count matching pairs between q(D) and q(Hs).
		matchCount := 0
		for _, r := range smp.Records {
			if satisfies(r, q, tk) {
				matchCount += len(joiner.Matches(r))
			}
		}
		sum += float64(matchCount) / theta
	}
	mean := sum / trials
	if math.Abs(mean-300) > 15 { // ~5σ for this setup
		t.Fatalf("E[|q(D)∩q(Hs)|/θ] = %v, want ≈300", mean)
	}
}

func recordsAt(recs []*relational.Record, ids []int) []*relational.Record {
	out := make([]*relational.Record, len(ids))
	for i, id := range ids {
		out[i] = recs[id]
	}
	return out
}

func satisfies(r *relational.Record, q deepweb.Query, tk *tokenize.Tokenizer) bool {
	set := tk.Set(r.Document())
	for _, w := range q {
		if _, ok := set[w]; !ok {
			return false
		}
	}
	return true
}

// TestLemma5OverflowBiasedExpectation validates the Lemma 5 bias formula:
// E[|q(D)|·kθ/|q(Hs)|] ≈ k·|q(D)|/|q(H)| (conditioning on |q(Hs)| > 0).
func TestLemma5OverflowBiasedExpectation(t *testing.T) {
	rng := stats.NewRNG(202)
	const (
		freqH  = 800 // |q(H)|
		freqD  = 120 // |q(D)|
		k      = 100
		theta  = 0.05
		trials = 2000
	)
	sum, n := 0.0, 0
	for trial := 0; trial < trials; trial++ {
		// |q(Hs)| ~ Binomial(freqH, theta)
		freqS := 0
		for i := 0; i < freqH; i++ {
			if rng.Float64() < theta {
				freqS++
			}
		}
		if freqS == 0 {
			continue
		}
		sum += float64(freqD) * float64(k) * theta / float64(freqS)
		n++
	}
	mean := sum / float64(n)
	want := float64(k) * float64(freqD) / float64(freqH) // = 15
	// Ratio estimators carry O(1/(θ·freqH)) relative bias; allow 5%.
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("E[biased overflow estimate] = %v, want ≈%v", mean, want)
	}
}

// TestLemma4OverflowUnbiasedExpectation validates the conditionally
// unbiased overflow estimator: with q(D)∩q(H) a uniform subset of q(H),
// E[|q(D)∩q(Hs)|·k/|q(Hs)|] ≈ |q(D)∩q(H)|·k/|q(H)| — the expected true
// benefit under the hypergeometric model (Equation 7).
func TestLemma4OverflowUnbiasedExpectation(t *testing.T) {
	rng := stats.NewRNG(303)
	const (
		freqH  = 600
		inD    = 150 // |q(D) ∩ q(H)|
		k      = 50
		theta  = 0.05
		trials = 3000
	)
	sum, n := 0.0, 0
	for trial := 0; trial < trials; trial++ {
		// Choose which hidden matches are in D uniformly.
		perm := rng.Perm(freqH)
		isInD := make([]bool, freqH)
		for _, i := range perm[:inD] {
			isInD[i] = true
		}
		freqS, matchS := 0, 0
		for i := 0; i < freqH; i++ {
			if rng.Float64() < theta {
				freqS++
				if isInD[i] {
					matchS++
				}
			}
		}
		if freqS == 0 {
			continue
		}
		sum += float64(matchS) * float64(k) / float64(freqS)
		n++
	}
	mean := sum / float64(n)
	want := float64(inD) * float64(k) / float64(freqH) // = 12.5
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("E[unbiased overflow estimate] = %v, want ≈%v", mean, want)
	}
}

// Property: the biased estimator never exceeds |q(D)| — the hard upper
// bound on any query's true benefit. When overflow is predicted through
// the sample, kθ/|q(Hs)| < 1 by the prediction inequality; when predicted
// through the α fallback, kα < |q(D)| likewise.
func TestBiasedNeverExceedsFreqD(t *testing.T) {
	rng := stats.NewRNG(404)
	b := Biased{}
	for trial := 0; trial < 20000; trial++ {
		s := Stats{
			FreqD:       1 + rng.Intn(5000),
			FreqSample:  rng.Intn(50),
			MatchSample: rng.Intn(10),
			Theta:       0.0001 + rng.Float64()*0.05,
			K:           1 + rng.Intn(500),
		}
		if rng.Bool(0.5) {
			s.Alpha = 0.0001 + rng.Float64()*0.5
		}
		if got := b.Benefit(s); got > float64(s.FreqD)+1e-9 {
			t.Fatalf("biased benefit %v exceeds |q(D)| = %d (stats %+v)", got, s.FreqD, s)
		}
		if got := b.Benefit(s); got < 0 {
			t.Fatalf("negative benefit %v (stats %+v)", got, s)
		}
	}
}

// Property: the unbiased estimator is never negative and, for solid
// predictions, scales linearly with MatchSample.
func TestUnbiasedNonNegative(t *testing.T) {
	rng := stats.NewRNG(505)
	u := Unbiased{}
	for trial := 0; trial < 20000; trial++ {
		s := Stats{
			FreqD:       1 + rng.Intn(5000),
			FreqSample:  rng.Intn(50),
			MatchSample: rng.Intn(10),
			Theta:       0.0001 + rng.Float64()*0.05,
			K:           1 + rng.Intn(500),
			Alpha:       rng.Float64() * 0.5,
		}
		if got := u.Benefit(s); got < 0 {
			t.Fatalf("negative unbiased benefit %v (stats %+v)", got, s)
		}
	}
}
