package estimator

import "smartcrawl/internal/stats"

// WeightedBiased generalizes the biased estimator to a known draw-odds
// ratio ω ≠ 1 (§5.3): when the top-k records of an overflowing query are ω
// times as likely to match the local table as the tail records, the
// covered count follows Fisher's noncentral hypergeometric distribution
// rather than the central one, and the expected benefit is its mean
// instead of n·k/N. The paper assumes ω = 1 because users cannot supply ω;
// this estimator is the extension that lifts the assumption, and the
// ω-sensitivity experiment quantifies what it buys.
//
// With Omega = 1 it reduces exactly to Biased.
type WeightedBiased struct {
	// Omega is the odds ratio: the relative probability that a top-k
	// record (vs a tail record) of an overflowing query matches D.
	Omega float64
}

// Name implements Estimator.
func (e WeightedBiased) Name() string { return "weighted-biased" }

// Benefit implements Estimator. Solid queries are unaffected by ranking,
// so they keep the plain |q(D)| estimate; overflowing queries estimate
// N̂ = |q(Hs)|/θ, n̂ = |q(D)|, and return the Fisher noncentral mean of
// drawing n̂ from N̂ with k successes at odds ratio Omega.
func (e WeightedBiased) Benefit(s Stats) float64 {
	omega := e.Omega
	if omega <= 0 {
		omega = 1
	}
	if !PredictOverflow(s) {
		return float64(s.FreqD)
	}
	if s.FreqSample == 0 {
		// §6.2 fallback: treat D as the sample; the central value is
		// kα, scaled by the same ω adjustment ratio at the estimated
		// population.
		return float64(s.K) * s.Alpha * omegaAdjust(s, omega)
	}
	nHat := float64(s.FreqSample) / s.Theta
	N := int(nHat + 0.5)
	if N < s.K {
		N = s.K
	}
	n := s.FreqD
	if n > N {
		n = N
	}
	return stats.FisherNoncentralMean(N, s.K, n, omega)
}

// omegaAdjust returns the ratio between the noncentral and central means
// for a canonical overflow shape, used only by the sample-starved fallback
// where the true N is unknown.
func omegaAdjust(s Stats, omega float64) float64 {
	if omega == 1 {
		return 1
	}
	// Canonical shape: population 10k, draws |q(D)|, successes k.
	const N = 10000
	n := s.FreqD
	if n > N {
		n = N
	}
	central := stats.FisherNoncentralMean(N, s.K, n, 1)
	if central == 0 {
		return 1
	}
	return stats.FisherNoncentralMean(N, s.K, n, omega) / central
}
