package estimator

import "smartcrawl/internal/obs"

// Instrumented wraps an Estimator so every Benefit call is counted in the
// observability sink. Benefit invocations are the Algorithm-4 hot path —
// the lazy heap rescores on every pop and invalidation — so the hook is a
// single atomic add and the estimate itself is untouched: an instrumented
// estimator returns bit-identical benefits, preserving selection order.
// Estimate-vs-realized accuracy is tracked separately, per absorbed query
// (obs.Obs.Query), because realized benefit only exists after issuing.
type Instrumented struct {
	E   Estimator
	Obs *obs.Obs
}

// Name implements Estimator, passing the wrapped name through so
// experiment output is unchanged by instrumentation.
func (i Instrumented) Name() string { return i.E.Name() }

// Benefit implements Estimator.
func (i Instrumented) Benefit(s Stats) float64 {
	i.Obs.EstimateComputed()
	return i.E.Benefit(s)
}
