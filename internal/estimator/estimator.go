// Package estimator implements the query-benefit estimators of the paper's
// Section 5 (summarized in its Table 1) plus the inadequate-sample-size
// fallback of Section 6.2. Given per-query statistics — the live query
// frequency |q(D)|, the sample frequency |q(Hs)|, the matched-pair count
// |q(D) ∩̃ q(Hs)|, the sampling ratio θ, and the interface limit k — an
// estimator predicts the query's benefit: how many uncovered local records
// issuing it would cover.
//
//	             Unbiased                      Biased (small bias)
//	Solid        |q(D) ∩̃ q(Hs)| / θ            |q(D)|
//	Overflowing  |q(D) ∩̃ q(Hs)| · k/|q(Hs)|    |q(D)| · kθ/|q(Hs)|
//
// A query is predicted overflowing when its estimated hidden frequency
// |q(Hs)|/θ exceeds k; when |q(Hs)| = 0 the local database itself is
// treated as a second sample with ratio α = θ·|D|/|Hs| (§6.2), predicting
// overflow when |q(D)|/α > k and estimating the benefit of such queries as
// k·α.
package estimator

// Stats carries everything an estimator may consult about one query at one
// selection iteration. FreqD and MatchSample are live values over the
// *current* (not-yet-covered) local database; sample-side values are
// static.
type Stats struct {
	// FreqD is |q(D)|: local records (still in D) satisfying q.
	FreqD int
	// FreqSample is |q(Hs)|: sample records satisfying q.
	FreqSample int
	// MatchSample is |q(D) ∩̃ q(Hs)|: matching record pairs between q(D)
	// and q(Hs) (exact or fuzzy, per the active matcher).
	MatchSample int
	// Theta is the sampling ratio θ = |Hs|/|H|.
	Theta float64
	// K is the interface's top-k limit.
	K int
	// Alpha is the §6.2 fallback ratio α = θ·|D|/|Hs| (≈ |D|/|H|),
	// treating D as a second sample of H. Zero disables the fallback.
	Alpha float64
}

// Estimator predicts query benefit from Stats.
type Estimator interface {
	// Name identifies the estimator in experiment output.
	Name() string
	// Benefit returns the estimated number of uncovered local records
	// the query would cover if issued now.
	Benefit(s Stats) float64
}

// PredictOverflow reports whether the query is predicted to be overflowing
// (|q(H)| > k), using the sample-based prediction of §5.1 and, when the
// sample says nothing (|q(Hs)| = 0) and Alpha is set, the §6.2 fallback.
//
// The fallback requires |q(D)| ≥ 2: a single local occurrence is no
// statistical evidence of ~1/α hidden matches — the typical |q(D)| = 1
// query is a full-record key whose hidden frequency is ≈ 1, and treating
// it as overflowing would crush the guaranteed-benefit-1 specific queries
// below genuinely overflowing general ones (visible as SMARTCRAWL losing
// to NAIVECRAWL on very small local databases).
func PredictOverflow(s Stats) bool {
	if s.FreqSample > 0 {
		return float64(s.FreqSample)/s.Theta > float64(s.K)
	}
	if s.Alpha > 0 && s.FreqD >= 2 {
		return float64(s.FreqD)/s.Alpha > float64(s.K)
	}
	return false
}

// Biased is the paper's recommended estimator (SmartCrawl-B): |q(D)| for
// solid queries (bias |q(ΔD)|) and |q(D)|·kθ/|q(Hs)| for overflowing ones
// (bias |q(ΔD)|·k/|q(H)|). Superior to the unbiased estimators at small
// sampling ratios because it never collapses to coarse multiples of 1/θ.
type Biased struct{}

// Name implements Estimator.
func (Biased) Name() string { return "biased" }

// Benefit implements Estimator.
func (Biased) Benefit(s Stats) float64 {
	if !PredictOverflow(s) {
		return float64(s.FreqD)
	}
	if s.FreqSample == 0 {
		// §6.2: only reachable when Alpha predicted overflow; the
		// estimator |q(D)|·kθ/|q(Hs)| is undefined, so substitute
		// D-as-sample: |q(D)|·kα/|q(D)| = kα.
		return float64(s.K) * s.Alpha
	}
	return float64(s.FreqD) * float64(s.K) * s.Theta / float64(s.FreqSample)
}

// Unbiased is the estimator pair with zero (solid) or conditionally-zero
// (overflowing, given |q(Hs)|) bias: |q(D) ∩̃ q(Hs)|/θ and
// |q(D) ∩̃ q(Hs)|·k/|q(Hs)|. Its estimates are coarse-grained multiples of
// 1/θ and mostly zero at small θ, which is exactly the weakness the
// experiments demonstrate.
type Unbiased struct{}

// Name implements Estimator.
func (Unbiased) Name() string { return "unbiased" }

// Benefit implements Estimator.
func (Unbiased) Benefit(s Stats) float64 {
	if !PredictOverflow(s) {
		return float64(s.MatchSample) / s.Theta
	}
	if s.FreqSample == 0 {
		// Overflow predicted via the α fallback; the unbiased ratio
		// estimator needs |q(Hs)| > 0, so cap at k.
		v := float64(s.MatchSample) / s.Theta
		if v > float64(s.K) {
			v = float64(s.K)
		}
		return v
	}
	return float64(s.MatchSample) * float64(s.K) / float64(s.FreqSample)
}

// Frequency is QSel-Simple's "estimator": benefit = |q(D)|, ignoring the
// sample, the top-k limit, and ΔD entirely (§3.2, Algorithm 2).
type Frequency struct{}

// Name implements Estimator.
func (Frequency) Name() string { return "frequency" }

// Benefit implements Estimator.
func (Frequency) Benefit(s Stats) float64 { return float64(s.FreqD) }

// TrueBenefitBias returns the analytic bias of the Biased estimator for an
// overflowing query (Equation 13): |q(ΔD)|·k/|q(H)|. Exposed for the
// estimator-accuracy experiment, which has oracle access to ΔD and |q(H)|.
func TrueBenefitBias(freqDeltaD, k, freqH int) float64 {
	if freqH == 0 {
		return 0
	}
	return float64(freqDeltaD) * float64(k) / float64(freqH)
}
