package lazyheap

import (
	"sort"
	"testing"

	"smartcrawl/internal/stats"
)

func noRescore(t *testing.T) func(int) (float64, bool) {
	return func(id int) (float64, bool) {
		t.Fatalf("unexpected rescore of %d", id)
		return 0, false
	}
}

func TestPopOrder(t *testing.T) {
	q := New()
	q.Push(1, 3)
	q.Push(2, 7)
	q.Push(3, 5)
	want := []int{2, 3, 1}
	for _, w := range want {
		id, _, ok := q.Pop(noRescore(t))
		if !ok || id != w {
			t.Fatalf("Pop = %d, want %d", id, w)
		}
	}
	if _, _, ok := q.Pop(noRescore(t)); ok {
		t.Fatal("empty queue should report ok=false")
	}
}

func TestTiesBrokenByID(t *testing.T) {
	q := New()
	q.Push(9, 4)
	q.Push(2, 4)
	q.Push(5, 4)
	var got []int
	for i := 0; i < 3; i++ {
		id, _, _ := q.Pop(noRescore(t))
		got = append(got, id)
	}
	if got[0] != 2 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("tie order = %v, want [2 5 9]", got)
	}
}

func TestLazyRescore(t *testing.T) {
	q := New()
	q.Push(1, 10)
	q.Push(2, 8)
	// Query 1 loses priority (e.g. records covered) down to 5.
	q.Invalidate(1)
	rescored := 0
	id, pri, ok := q.Pop(func(id int) (float64, bool) {
		rescored++
		if id != 1 {
			t.Fatalf("rescored %d", id)
		}
		return 5, true
	})
	if !ok || id != 2 || pri != 8 {
		t.Fatalf("Pop = (%d, %v), want (2, 8)", id, pri)
	}
	if rescored != 1 {
		t.Fatalf("rescored %d times", rescored)
	}
	if q.Repushes != 1 {
		t.Fatalf("Repushes = %d", q.Repushes)
	}
	id, pri, ok = q.Pop(noRescore(t))
	if !ok || id != 1 || pri != 5 {
		t.Fatalf("second Pop = (%d, %v), want (1, 5)", id, pri)
	}
}

func TestRescoreDrop(t *testing.T) {
	q := New()
	q.Push(1, 10)
	q.Push(2, 8)
	q.Invalidate(1)
	id, _, ok := q.Pop(func(int) (float64, bool) { return 0, false })
	if !ok || id != 2 {
		t.Fatalf("Pop = %d, want 2 after drop", id)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestInvalidateUnknownIDHarmless(t *testing.T) {
	q := New()
	q.Push(1, 1)
	q.Invalidate(42)
	id, _, ok := q.Pop(noRescore(t))
	if !ok || id != 1 {
		t.Fatalf("Pop = %d", id)
	}
}

func TestRescoreThenCleanReturnSamePop(t *testing.T) {
	q := New()
	q.Push(1, 10)
	q.Invalidate(1)
	// A single Pop rescores the stale entry and, once it is clean and
	// still on top, returns it.
	calls := 0
	id, pri, ok := q.Pop(func(int) (float64, bool) { calls++; return 10, true })
	if !ok || id != 1 || pri != 10 {
		t.Fatalf("Pop = (%d, %v, %v)", id, pri, ok)
	}
	if calls != 1 {
		t.Fatalf("rescore called %d times", calls)
	}
	if _, _, ok := q.Pop(noRescore(t)); ok {
		t.Fatal("queue should be empty")
	}
}

// TestMatchesEagerBaseline simulates many rounds of random decrements and
// verifies the lazy queue always yields the same selection sequence as an
// eager argmax scan — the equivalence claim behind §6.3.
func TestMatchesEagerBaseline(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(80)
		pri := make([]float64, n)
		alive := make([]bool, n)
		q := New()
		for i := 0; i < n; i++ {
			pri[i] = float64(rng.Intn(50) + 1)
			alive[i] = true
			q.Push(i, pri[i])
		}
		for round := 0; ; round++ {
			// Eager baseline: argmax over alive entries, ties by ID.
			best := -1
			bestPri := 0.0
			for i := 0; i < n; i++ {
				if alive[i] && (best == -1 || pri[i] > bestPri) {
					best, bestPri = i, pri[i]
				}
			}
			id, p, ok := q.Pop(func(id int) (float64, bool) {
				return pri[id], true
			})
			if best == -1 {
				if ok {
					t.Fatalf("trial %d: queue returned %d after baseline exhausted", trial, id)
				}
				break
			}
			if !ok {
				t.Fatalf("trial %d round %d: queue exhausted early", trial, round)
			}
			if id != best || p != bestPri {
				t.Fatalf("trial %d round %d: lazy (%d,%v) vs eager (%d,%v)",
					trial, round, id, p, best, bestPri)
			}
			alive[id] = false
			// Random decrements, mirroring covered records shrinking |q(D)|.
			for k := 0; k < 5; k++ {
				j := rng.Intn(n)
				if alive[j] {
					pri[j] -= float64(rng.Intn(3))
					q.Invalidate(j)
				}
			}
		}
	}
}

func BenchmarkLazyQueue(b *testing.B) {
	rng := stats.NewRNG(1)
	const n = 10000
	pri := make([]float64, n)
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		b.StopTimer()
		q := New()
		for i := 0; i < n; i++ {
			pri[i] = float64(rng.Intn(1000))
			q.Push(i, pri[i])
		}
		b.StartTimer()
		for {
			id, _, ok := q.Pop(func(id int) (float64, bool) { return pri[id], true })
			if !ok {
				break
			}
			for k := 0; k < 3; k++ {
				j := rng.Intn(n)
				if pri[j] > 0 {
					pri[j]--
					q.Invalidate(j)
				}
			}
			_ = id
		}
	}
}

// Sanity: popping everything yields each ID exactly once.
func TestPopYieldsEachIDOnce(t *testing.T) {
	q := New()
	const n = 500
	rng := stats.NewRNG(3)
	for i := 0; i < n; i++ {
		q.Push(i, rng.Float64())
	}
	var got []int
	for {
		id, _, ok := q.Pop(noRescore(t))
		if !ok {
			break
		}
		got = append(got, id)
	}
	if len(got) != n {
		t.Fatalf("popped %d, want %d", len(got), n)
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("missing or duplicate id near %d", i)
		}
	}
}

func TestReprioritize(t *testing.T) {
	q := New()
	pri := map[int]float64{1: 10, 2: 8, 3: 6, 4: 5}
	for id, p := range pri {
		q.Push(id, p)
	}
	// Global parameter change flips the ordering and drops one entry.
	pri[3] = 20
	pri[1] = 1
	q.Reprioritize(func(id int) (float64, bool) {
		if id == 4 {
			return 0, false
		}
		return pri[id], true
	})
	if q.Len() != 3 {
		t.Fatalf("Len = %d after drop", q.Len())
	}
	want := []int{3, 2, 1}
	for _, w := range want {
		id, p, ok := q.Pop(noRescore(t))
		if !ok || id != w || p != pri[w] {
			t.Fatalf("Pop = (%d, %v), want (%d, %v)", id, p, w, pri[w])
		}
	}
}

func TestReprioritizeClearsDirtyFlags(t *testing.T) {
	q := New()
	q.Push(1, 10)
	q.Invalidate(1)
	q.Reprioritize(func(int) (float64, bool) { return 7, true })
	// Entry is clean after the rebuild: Pop must not rescore.
	id, p, ok := q.Pop(noRescore(t))
	if !ok || id != 1 || p != 7 {
		t.Fatalf("Pop = (%d, %v)", id, p)
	}
}
