// Package lazyheap implements the on-demand-updating priority queue of the
// paper's Section 6.3 and Figure 3(c). Selecting argmax |q(D)| naively
// requires rescanning the whole pool each iteration; instead, covered
// records only *invalidate* the affected queries (via the forward index),
// and a query's priority is recomputed lazily when it surfaces at the top
// of the heap — the delta-update index U of Algorithm 4. A popped query is
// returned only when its priority is clean, which preserves argmax
// correctness because priorities only ever decrease.
//
// The heap is hand-rolled rather than built on container/heap: the
// selection loop performs a push or pop per invalidated query per
// iteration, and the interface{} boxing of container/heap costs one
// allocation per operation on exactly that hot path. The dirty set is a
// dense []bool keyed by query ID (pool IDs are dense by construction), so
// invalidation and the staleness check are array indexing, not map probes.
package lazyheap

// Queue is a max-priority queue of query IDs with lazy revalidation.
// It is not safe for concurrent use.
type Queue struct {
	h     []entry
	dirty []bool

	// Repushes counts lazy re-insertions — the `t` factor in the paper's
	// Appendix B complexity analysis, reported by the ablation bench.
	Repushes int
}

type entry struct {
	id  int
	pri float64
}

// New returns an empty queue.
func New() *Queue { return &Queue{} }

// NewN returns an empty queue pre-sized for IDs 0..n-1, avoiding both the
// heap-array and dirty-set growth during the initial pool build.
func NewN(n int) *Queue {
	return &Queue{h: make([]entry, 0, n), dirty: make([]bool, n)}
}

// Push inserts a query with the given priority. Each query ID must be
// pushed at most once; re-prioritization happens only through Invalidate +
// lazy rescoring.
func (q *Queue) Push(id int, priority float64) {
	q.h = append(q.h, entry{id: id, pri: priority})
	q.up(len(q.h) - 1)
}

// Len returns the number of queries currently queued.
func (q *Queue) Len() int { return len(q.h) }

// Invalidate marks a query's cached priority as stale. The next time the
// query reaches the top of the heap, rescore is consulted before it can be
// returned. Invalidating an ID not in the queue is a harmless no-op (the
// flag is cleared when the ID fails to appear).
func (q *Queue) Invalidate(id int) {
	if id >= len(q.dirty) {
		grown := make([]bool, id+1)
		copy(grown, q.dirty)
		q.dirty = grown
	}
	q.dirty[id] = true
}

// isDirty reports and clears nothing; bounds-checked dense lookup.
func (q *Queue) isDirty(id int) bool {
	return id < len(q.dirty) && q.dirty[id]
}

// Reprioritize rebuilds the whole queue by rescoring every entry — used
// when a global parameter of the scoring function changes (e.g. an online
// calibration constant), which may raise priorities and therefore cannot
// be handled by lazy invalidation (a stale low entry would hide beneath
// clean ones). Entries for which rescore returns keep=false are dropped.
// O(n) rescores plus O(n) heapify.
func (q *Queue) Reprioritize(rescore func(id int) (priority float64, keep bool)) {
	old := q.h
	q.h = q.h[:0]
	for _, e := range old {
		if q.isDirty(e.id) {
			q.dirty[e.id] = false
		}
		pri, keep := rescore(e.id)
		if !keep {
			continue
		}
		q.h = append(q.h, entry{id: e.id, pri: pri})
	}
	// Bottom-up heapify.
	for i := len(q.h)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}

// Pop returns the query with the largest up-to-date priority, removing it
// from the queue. For every stale query encountered at the top, rescore is
// called with its ID; rescore returns the fresh priority and whether the
// query should stay in the pool (keep=false drops it outright, used when
// |q(D)| has fallen to zero). Pop returns ok=false when the queue is
// exhausted.
//
// Correctness relies on priorities being non-increasing over time (covering
// records can only shrink |q(D)|): a clean top entry therefore dominates
// every stale entry's true priority.
func (q *Queue) Pop(rescore func(id int) (priority float64, keep bool)) (id int, priority float64, ok bool) {
	for len(q.h) > 0 {
		top := q.popTop()
		if !q.isDirty(top.id) {
			return top.id, top.pri, true
		}
		q.dirty[top.id] = false
		pri, keep := rescore(top.id)
		if !keep {
			continue
		}
		q.Repushes++
		q.Push(top.id, pri)
	}
	return 0, 0, false
}

// Peek returns the query a Pop would return, without removing it: stale
// top entries are rescored and re-inserted exactly as Pop would (including
// the Repushes accounting), so a Peek followed by a Pop with the same
// rescore performs no additional cleaning work. The federation allocator
// uses Peek to rank interfaces by their best clean benefit before
// committing the round to one of them. Peek returns ok=false when the
// queue is (or cleans down to) empty.
func (q *Queue) Peek(rescore func(id int) (priority float64, keep bool)) (id int, priority float64, ok bool) {
	for len(q.h) > 0 {
		top := q.h[0]
		if !q.isDirty(top.id) {
			return top.id, top.pri, true
		}
		q.popTop()
		q.dirty[top.id] = false
		pri, keep := rescore(top.id)
		if !keep {
			continue
		}
		q.Repushes++
		q.Push(top.id, pri)
	}
	return 0, 0, false
}

// popTop removes and returns the root entry.
func (q *Queue) popTop() entry {
	n := len(q.h) - 1
	top := q.h[0]
	q.h[0] = q.h[n]
	q.h = q.h[:n]
	if n > 0 {
		q.down(0)
	}
	return top
}

// less orders entries max-first on priority with ties broken by smaller ID
// so selection is fully deterministic.
func (q *Queue) less(i, j int) bool {
	if q.h[i].pri != q.h[j].pri {
		return q.h[i].pri > q.h[j].pri
	}
	return q.h[i].id < q.h[j].id
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		best := l
		if r < n && q.less(r, l) {
			best = r
		}
		if !q.less(best, i) {
			return
		}
		q.h[i], q.h[best] = q.h[best], q.h[i]
		i = best
	}
}
