// Package lazyheap implements the on-demand-updating priority queue of the
// paper's Section 6.3 and Figure 3(c). Selecting argmax |q(D)| naively
// requires rescanning the whole pool each iteration; instead, covered
// records only *invalidate* the affected queries (via the forward index),
// and a query's priority is recomputed lazily when it surfaces at the top
// of the heap — the delta-update index U of Algorithm 4. A popped query is
// returned only when its priority is clean, which preserves argmax
// correctness because priorities only ever decrease.
package lazyheap

import "container/heap"

// Queue is a max-priority queue of query IDs with lazy revalidation.
// It is not safe for concurrent use.
type Queue struct {
	h     entryHeap
	dirty map[int]bool

	// Repushes counts lazy re-insertions — the `t` factor in the paper's
	// Appendix B complexity analysis, reported by the ablation bench.
	Repushes int
}

type entry struct {
	id  int
	pri float64
}

// New returns an empty queue.
func New() *Queue {
	return &Queue{dirty: make(map[int]bool)}
}

// Push inserts a query with the given priority. Each query ID must be
// pushed at most once; re-prioritization happens only through Invalidate +
// lazy rescoring.
func (q *Queue) Push(id int, priority float64) {
	heap.Push(&q.h, entry{id: id, pri: priority})
}

// Len returns the number of queries currently queued.
func (q *Queue) Len() int { return q.h.Len() }

// Invalidate marks a query's cached priority as stale. The next time the
// query reaches the top of the heap, rescore is consulted before it can be
// returned. Invalidating an ID not in the queue is a harmless no-op (the
// flag is cleared when the ID fails to appear).
func (q *Queue) Invalidate(id int) { q.dirty[id] = true }

// Reprioritize rebuilds the whole queue by rescoring every entry — used
// when a global parameter of the scoring function changes (e.g. an online
// calibration constant), which may raise priorities and therefore cannot
// be handled by lazy invalidation (a stale low entry would hide beneath
// clean ones). Entries for which rescore returns keep=false are dropped.
// O(n) rescores plus O(n) heapify.
func (q *Queue) Reprioritize(rescore func(id int) (priority float64, keep bool)) {
	old := q.h
	q.h = q.h[:0]
	for _, e := range old {
		if q.dirty[e.id] {
			delete(q.dirty, e.id)
		}
		pri, keep := rescore(e.id)
		if !keep {
			continue
		}
		q.h = append(q.h, entry{id: e.id, pri: pri})
	}
	heap.Init(&q.h)
}

// Pop returns the query with the largest up-to-date priority, removing it
// from the queue. For every stale query encountered at the top, rescore is
// called with its ID; rescore returns the fresh priority and whether the
// query should stay in the pool (keep=false drops it outright, used when
// |q(D)| has fallen to zero). Pop returns ok=false when the queue is
// exhausted.
//
// Correctness relies on priorities being non-increasing over time (covering
// records can only shrink |q(D)|): a clean top entry therefore dominates
// every stale entry's true priority.
func (q *Queue) Pop(rescore func(id int) (priority float64, keep bool)) (id int, priority float64, ok bool) {
	for q.h.Len() > 0 {
		top := heap.Pop(&q.h).(entry)
		if !q.dirty[top.id] {
			return top.id, top.pri, true
		}
		delete(q.dirty, top.id)
		pri, keep := rescore(top.id)
		if !keep {
			continue
		}
		q.Repushes++
		heap.Push(&q.h, entry{id: top.id, pri: pri})
	}
	return 0, 0, false
}

// entryHeap is a max-heap on priority with ties broken by smaller ID so
// selection is fully deterministic.
type entryHeap []entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri > h[j].pri
	}
	return h[i].id < h[j].id
}
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(entry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
