package index

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// figure1Local reproduces the local database of the paper's Figure 1(a).
func figure1Local() []*relational.Record {
	names := []string{
		"Thai Noodle House",
		"Saigon Noodle House",
		"Thai House",
		"Thai Noodle House Express", // d4-like: shares thai/noodle/house
	}
	recs := make([]*relational.Record, len(names))
	for i, n := range names {
		recs[i] = &relational.Record{ID: i, Values: []string{n}}
	}
	return recs
}

func TestLookupConjunctive(t *testing.T) {
	tk := tokenize.New()
	inv := BuildInverted(figure1Local(), tk)

	cases := []struct {
		q    []string
		want []int
	}{
		{[]string{"house"}, []int{0, 1, 2, 3}},
		{[]string{"noodle", "house"}, []int{0, 1, 3}},
		{[]string{"thai"}, []int{0, 2, 3}},
		{[]string{"thai", "noodle", "house"}, []int{0, 3}},
		{[]string{"saigon"}, []int{1}},
		{[]string{"missing"}, nil},
		{[]string{"thai", "missing"}, nil},
		{nil, nil},
	}
	for _, c := range cases {
		if got := inv.Lookup(c.q); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Lookup(%v) = %v, want %v", c.q, got, c.want)
		}
		if got := inv.Count(c.q); got != len(c.want) {
			t.Errorf("Count(%v) = %d, want %d", c.q, got, len(c.want))
		}
	}
}

func TestDocFreqAndVocabulary(t *testing.T) {
	tk := tokenize.New()
	inv := BuildInverted(figure1Local(), tk)
	if inv.Size() != 4 {
		t.Fatalf("Size = %d", inv.Size())
	}
	if got := inv.DocFreq("house"); got != 4 {
		t.Fatalf("DocFreq(house) = %d", got)
	}
	if got := inv.DocFreq("nope"); got != 0 {
		t.Fatalf("DocFreq(nope) = %d", got)
	}
	// vocabulary: thai, noodle, house, saigon, express
	if got := inv.VocabularySize(); got != 5 {
		t.Fatalf("VocabularySize = %d", got)
	}
}

func TestPostingsSortedUnique(t *testing.T) {
	tk := tokenize.New()
	// Records given out of ID order with duplicate tokens inside one doc.
	recs := []*relational.Record{
		{ID: 5, Values: []string{"alpha beta alpha"}},
		{ID: 1, Values: []string{"alpha"}},
		{ID: 3, Values: []string{"beta alpha"}},
	}
	inv := BuildInverted(recs, tk)
	p := inv.Postings("alpha")
	if !reflect.DeepEqual(p, []int{1, 3, 5}) {
		t.Fatalf("postings = %v", p)
	}
}

func TestIntersectGalloping(t *testing.T) {
	// Force the galloping path: tiny a, big b.
	a := []int{3, 500, 999}
	b := make([]int, 1000)
	for i := range b {
		b[i] = i
	}
	if got := intersect(a, b); !reflect.DeepEqual(got, a) {
		t.Fatalf("intersect = %v", got)
	}
	if got := intersect(b, a); !reflect.DeepEqual(got, a) {
		t.Fatalf("intersect reversed = %v", got)
	}
}

// Property: Lookup agrees with a brute-force scan over random corpora.
func TestLookupMatchesBruteForce(t *testing.T) {
	tk := tokenize.New()
	rng := stats.NewRNG(99)
	vocab := []string{"aa", "bb", "cc", "dd", "ee", "ff"}

	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		recs := make([]*relational.Record, n)
		for i := 0; i < n; i++ {
			k := 1 + rng.Intn(4)
			doc := ""
			for j := 0; j < k; j++ {
				doc += vocab[rng.Intn(len(vocab))] + " "
			}
			recs[i] = &relational.Record{ID: i, Values: []string{doc}}
		}
		inv := BuildInverted(recs, tk)

		qlen := 1 + rng.Intn(3)
		q := make([]string, qlen)
		for j := range q {
			q[j] = vocab[rng.Intn(len(vocab))]
		}

		var want []int
		for _, r := range recs {
			set := tk.Set(r.Document())
			ok := true
			for _, w := range q {
				if _, in := set[w]; !in {
					ok = false
					break
				}
			}
			if ok {
				want = append(want, r.ID)
			}
		}
		sort.Ints(want)
		got := inv.Lookup(q)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Lookup(%v) = %v, want %v", trial, q, got, want)
		}
	}
}

// Property: intersect is commutative and its result is sorted and a subset
// of both inputs.
func TestIntersectProperties(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		a := sortedUnique(aRaw)
		b := sortedUnique(bRaw)
		ab := intersect(a, b)
		ba := intersect(b, a)
		if !reflect.DeepEqual(ab, ba) {
			return false
		}
		inA := toSet(a)
		inB := toSet(b)
		for i, v := range ab {
			if i > 0 && ab[i-1] >= v {
				return false
			}
			if !inA[v] || !inB[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sortedUnique(raw []uint8) []int {
	m := map[int]bool{}
	for _, v := range raw {
		m[int(v)] = true
	}
	out := make([]int, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func toSet(s []int) map[int]bool {
	m := make(map[int]bool, len(s))
	for _, v := range s {
		m[v] = true
	}
	return m
}

func TestForwardIndex(t *testing.T) {
	f := NewForward()
	f.Add(3, 10)
	f.Add(3, 11)
	f.Add(5, 10)
	if got := f.List(3); !reflect.DeepEqual(got, []int{10, 11}) {
		t.Fatalf("List(3) = %v", got)
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.TotalEntries() != 3 {
		t.Fatalf("TotalEntries = %d", f.TotalEntries())
	}
	if got := f.Remove(3); !reflect.DeepEqual(got, []int{10, 11}) {
		t.Fatalf("Remove(3) = %v", got)
	}
	if f.List(3) != nil {
		t.Fatal("List after Remove should be nil")
	}
	if f.Len() != 1 {
		t.Fatalf("Len after Remove = %d", f.Len())
	}
	if f.Remove(99) != nil {
		t.Fatal("Remove of unknown record should be nil")
	}
}

func BenchmarkLookup(b *testing.B) {
	tk := tokenize.New()
	rng := stats.NewRNG(1)
	zipf := stats.NewZipf(rng, 1.0, 2000)
	recs := make([]*relational.Record, 20000)
	for i := range recs {
		doc := ""
		for j := 0; j < 8; j++ {
			doc += fmt.Sprintf("w%d ", zipf.Draw())
		}
		recs[i] = &relational.Record{ID: i, Values: []string{doc}}
	}
	inv := BuildInverted(recs, tk)
	q := []string{"w0", "w3"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inv.Lookup(q)
	}
}

// syntheticRecords builds n records with Zipf-ish random keyword documents,
// large enough to clear the parallel build's minimum shard size.
func syntheticRecords(n int) []*relational.Record {
	rng := stats.NewRNG(99)
	vocab := make([]string, 300)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("word%03d", i)
	}
	recs := make([]*relational.Record, n)
	for i := range recs {
		m := 2 + rng.Intn(6)
		words := make([]string, m)
		for j := range words {
			words[j] = vocab[rng.Intn(len(vocab))]
		}
		// Shuffled IDs: the defensive sort, not arrival order, must
		// guarantee sorted postings.
		recs[i] = &relational.Record{ID: i, Values: words}
	}
	rng.Shuffle(n, func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	return recs
}

// TestBuildInvertedNMatchesSequential: the sharded build must produce a
// postings map byte-identical to the sequential one for any worker count,
// including counts the clamp reduces (tiny input, absurd workers).
func TestBuildInvertedNMatchesSequential(t *testing.T) {
	tk := tokenize.New()
	recs := syntheticRecords(2048)
	ref := BuildInverted(recs, tk)
	for _, workers := range []int{2, 4, 8, 64} {
		got := BuildInvertedN(recs, tk, workers)
		if got.Size() != ref.Size() || got.VocabularySize() != ref.VocabularySize() {
			t.Fatalf("workers=%d: size/vocab %d/%d, want %d/%d",
				workers, got.Size(), got.VocabularySize(), ref.Size(), ref.VocabularySize())
		}
		if !reflect.DeepEqual(got.postings, ref.postings) {
			t.Fatalf("workers=%d: postings diverged from sequential build", workers)
		}
	}
	// Tiny input: clamp forces the sequential path; must still be correct.
	small := figure1Local()
	if !reflect.DeepEqual(BuildInvertedN(small, tk, 8).postings, BuildInverted(small, tk).postings) {
		t.Fatal("clamped parallel build diverged on tiny input")
	}
}
