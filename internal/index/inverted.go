// Package index implements the indexing machinery of the paper's Section 6.3
// and Figure 3: an inverted index over record documents for computing query
// frequencies |q(D)| by posting-list intersection (Figure 3(a)), and a
// forward index mapping each record to the pool queries it satisfies
// (Figure 3(b)), which drives the delta-update mechanism of the selection
// loop.
package index

import (
	"sort"
	"sync"

	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// Inverted maps each keyword to the sorted list of record IDs whose
// documents contain it. Posting lists are sorted ascending, enabling linear
// merge intersection.
type Inverted struct {
	postings map[string][]int
	size     int // number of indexed records
}

// minShard is the fewest records worth a shard of its own: sharding
// overhead beats the gain on small inputs.
const minShard = 256

// BuildInverted indexes the given records with tokenizer tk.
func BuildInverted(recs []*relational.Record, tk *tokenize.Tokenizer) *Inverted {
	return BuildInvertedN(recs, tk, 1)
}

// BuildInvertedNObs is BuildInvertedN with build observability: the shard
// count actually used and the build wall-clock land in the sink (phase
// "index_build"). A nil sink is exactly BuildInvertedN.
func BuildInvertedNObs(recs []*relational.Record, tk *tokenize.Tokenizer, workers int, o *obs.Obs) *Inverted {
	if o != nil {
		defer o.Phase("index_build")()
	}
	inv := BuildInvertedN(recs, tk, workers)
	if o != nil {
		// Report the effective shard count after the min-shard clamp.
		effective := workers
		if effective > len(recs)/minShard {
			effective = len(recs) / minShard
		}
		if effective < 1 {
			effective = 1
		}
		o.IndexBuilt(effective)
	}
	return inv
}

// BuildInvertedN is BuildInverted sharded over a worker pool: the record
// slice is split into contiguous chunks, each worker tokenizes and indexes
// its chunk into a private postings map, and the shards are merged in
// chunk order. The result is identical to the sequential build for any
// worker count — posting lists are sorted by record ID either way —
// because tokenization dominates the cost and is embarrassingly parallel.
// Workers below 2 (or tiny inputs) build sequentially.
func BuildInvertedN(recs []*relational.Record, tk *tokenize.Tokenizer, workers int) *Inverted {
	inv := &Inverted{postings: make(map[string][]int), size: len(recs)}
	if workers > len(recs)/minShard {
		workers = len(recs) / minShard
	}
	if workers <= 1 {
		for _, r := range recs {
			for _, w := range r.Tokens(tk) {
				inv.postings[w] = append(inv.postings[w], r.ID)
			}
		}
		sortPostings(inv.postings)
		return inv
	}
	shards := make([]map[string][]int, workers)
	var wg sync.WaitGroup
	chunk := (len(recs) + workers - 1) / workers
	for s := 0; s < workers; s++ {
		lo, hi := s*chunk, (s+1)*chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			m := make(map[string][]int)
			for _, r := range recs[lo:hi] {
				for _, w := range r.Tokens(tk) {
					m[w] = append(m[w], r.ID)
				}
			}
			shards[s] = m
		}(s, lo, hi)
	}
	wg.Wait()
	// Merge in shard order: contiguous chunks keep IDs grouped, and the
	// final defensive sort makes the layout identical to the sequential
	// build regardless of worker count.
	for _, m := range shards {
		for w, p := range m {
			inv.postings[w] = append(inv.postings[w], p...)
		}
	}
	sortPostings(inv.postings)
	return inv
}

// sortPostings sorts every posting list ascending. Record iteration order
// follows the slice, and Tokens is deduplicated, so each list is already
// sorted and unique if record IDs arrive in increasing order; records may
// arrive in arbitrary ID order, so sort defensively.
func sortPostings(postings map[string][]int) {
	for w, p := range postings {
		sort.Ints(p)
		postings[w] = p
	}
}

// Size returns the number of indexed records.
func (inv *Inverted) Size() int { return inv.size }

// VocabularySize returns the number of distinct indexed keywords.
func (inv *Inverted) VocabularySize() int { return len(inv.postings) }

// Postings returns the posting list for keyword w (shared slice; callers
// must not mutate). A missing keyword yields nil.
func (inv *Inverted) Postings(w string) []int { return inv.postings[w] }

// DocFreq returns |I(w)|, the number of records containing w.
func (inv *Inverted) DocFreq(w string) int { return len(inv.postings[w]) }

// Lookup returns the sorted IDs of records satisfying the conjunctive
// keyword query q — the paper's q(D) computed as ∩_{w∈q} I(w). An empty
// query matches nothing (issuing an empty query is meaningless), and any
// unknown keyword short-circuits to nil.
func (inv *Inverted) Lookup(q []string) []int {
	if len(q) == 0 {
		return nil
	}
	// Intersect starting from the rarest keyword: the intersection can
	// never exceed the smallest posting list, and seeding with it keeps
	// the merge cheap.
	lists := make([][]int, len(q))
	for i, w := range q {
		p := inv.postings[w]
		if len(p) == 0 {
			return nil
		}
		lists[i] = p
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	result := lists[0]
	for _, p := range lists[1:] {
		result = intersect(result, p)
		if len(result) == 0 {
			return nil
		}
	}
	// result may alias lists[0]; copy so callers can retain it safely.
	out := make([]int, len(result))
	copy(out, result)
	return out
}

// Count returns |q(D)| without materializing the ID list when possible.
func (inv *Inverted) Count(q []string) int { return len(inv.Lookup(q)) }

// intersect merges two sorted int slices. When the lengths are lopsided it
// switches to galloping (binary) search over the longer list.
func intersect(a, b []int) []int {
	if len(a) > len(b) {
		a, b = b, a
	}
	var out []int
	if len(b) > 16*len(a) {
		// Gallop: binary-search each element of a in b.
		for _, v := range a {
			i := sort.SearchInts(b, v)
			if i < len(b) && b[i] == v {
				out = append(out, v)
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
