package index

import (
	"fmt"
	"reflect"
	"testing"

	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

func TestCompressedMatchesPlain(t *testing.T) {
	tk := tokenize.New()
	rng := stats.NewRNG(5)
	vocab := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg"}
	recs := make([]*relational.Record, 500)
	for i := range recs {
		doc := ""
		for j := 0; j < 1+rng.Intn(5); j++ {
			doc += vocab[rng.Intn(len(vocab))] + " "
		}
		recs[i] = &relational.Record{ID: i, Values: []string{doc}}
	}
	plain := BuildInverted(recs, tk)
	comp := BuildCompressedInverted(recs, tk)

	if comp.Size() != plain.Size() || comp.VocabularySize() != plain.VocabularySize() {
		t.Fatalf("metadata mismatch: %d/%d vs %d/%d",
			comp.Size(), comp.VocabularySize(), plain.Size(), plain.VocabularySize())
	}
	for _, w := range vocab {
		if comp.DocFreq(w) != plain.DocFreq(w) {
			t.Fatalf("DocFreq(%s): %d vs %d", w, comp.DocFreq(w), plain.DocFreq(w))
		}
	}
	// All 1-, 2-, and 3-keyword queries.
	var queries [][]string
	for i, a := range vocab {
		queries = append(queries, []string{a})
		for j := i + 1; j < len(vocab); j++ {
			queries = append(queries, []string{a, vocab[j]})
			for l := j + 1; l < len(vocab); l++ {
				queries = append(queries, []string{a, vocab[j], vocab[l]})
			}
		}
	}
	queries = append(queries, []string{"missing"}, []string{"aa", "missing"}, nil)
	for _, q := range queries {
		want := plain.Lookup(q)
		got := comp.Lookup(q)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Lookup(%v): %v vs %v", q, got, want)
		}
		if comp.Count(q) != plain.Count(q) {
			t.Fatalf("Count(%v) mismatch", q)
		}
	}
}

func TestCompressedSavesSpace(t *testing.T) {
	tk := tokenize.New()
	rng := stats.NewRNG(9)
	zipf := stats.NewZipf(rng, 1.0, 500)
	recs := make([]*relational.Record, 20000)
	for i := range recs {
		doc := ""
		for j := 0; j < 6; j++ {
			doc += fmt.Sprintf("w%03d ", zipf.Draw())
		}
		recs[i] = &relational.Record{ID: i, Values: []string{doc}}
	}
	comp := BuildCompressedInverted(recs, tk)
	plainBytes := 0
	plain := BuildInverted(recs, tk)
	for w := range plain.postings {
		plainBytes += 8 * len(plain.postings[w]) // int64 slice storage
	}
	ratio := float64(comp.Bytes()) / float64(plainBytes)
	t.Logf("compressed %d bytes vs plain %d bytes (ratio %.2f)", comp.Bytes(), plainBytes, ratio)
	if ratio > 0.35 {
		t.Fatalf("compression ratio %.2f — d-gap varints should cut ≥ 65%% on this workload", ratio)
	}
}

func TestCompressedEmptyAndSingleton(t *testing.T) {
	tk := tokenize.New()
	comp := BuildCompressedInverted(nil, tk)
	if comp.Lookup([]string{"x"}) != nil || comp.Size() != 0 {
		t.Fatal("empty index")
	}
	one := BuildCompressedInverted([]*relational.Record{
		{ID: 7, Values: []string{"solo token"}},
	}, tk)
	if got := one.Lookup([]string{"solo"}); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("singleton lookup = %v", got)
	}
	if got := one.Lookup([]string{"solo", "token"}); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("two-keyword singleton lookup = %v", got)
	}
}

func BenchmarkCompressedLookup(b *testing.B) {
	tk := tokenize.New()
	rng := stats.NewRNG(1)
	zipf := stats.NewZipf(rng, 1.0, 2000)
	recs := make([]*relational.Record, 20000)
	for i := range recs {
		doc := ""
		for j := 0; j < 8; j++ {
			doc += fmt.Sprintf("w%d ", zipf.Draw())
		}
		recs[i] = &relational.Record{ID: i, Values: []string{doc}}
	}
	inv := BuildCompressedInverted(recs, tk)
	q := []string{"w0", "w3"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inv.Lookup(q)
	}
}
