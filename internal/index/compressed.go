package index

import (
	"encoding/binary"
	"sort"

	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// CompressedInverted is a space-efficient inverted index: each posting list
// is stored as varint-encoded deltas between consecutive record IDs
// (classic d-gap compression). For the skewed keyword distributions this
// system indexes — a few head tokens with tens of thousands of postings —
// it cuts index memory several-fold versus []int while supporting the same
// conjunctive lookups. Lists decompress lazily during intersection, so the
// common short-circuit paths (rare keyword first) never touch the long
// lists' tails.
type CompressedInverted struct {
	postings map[string]compressedList
	size     int
}

type compressedList struct {
	data  []byte
	count int
}

// BuildCompressedInverted indexes the records like BuildInverted but with
// d-gap varint storage.
func BuildCompressedInverted(recs []*relational.Record, tk *tokenize.Tokenizer) *CompressedInverted {
	// Gather plain lists first (IDs may arrive unsorted).
	tmp := make(map[string][]int)
	for _, r := range recs {
		for _, w := range r.Tokens(tk) {
			tmp[w] = append(tmp[w], r.ID)
		}
	}
	inv := &CompressedInverted{
		postings: make(map[string]compressedList, len(tmp)),
		size:     len(recs),
	}
	var buf [binary.MaxVarintLen64]byte
	for w, ids := range tmp {
		sort.Ints(ids)
		data := make([]byte, 0, len(ids)) // gaps are usually 1 byte
		prev := 0
		for i, id := range ids {
			gap := id - prev
			if i == 0 {
				gap = id
			}
			n := binary.PutUvarint(buf[:], uint64(gap))
			data = append(data, buf[:n]...)
			prev = id
		}
		inv.postings[w] = compressedList{data: data, count: len(ids)}
	}
	return inv
}

// Size returns the number of indexed records.
func (inv *CompressedInverted) Size() int { return inv.size }

// VocabularySize returns the number of distinct keywords.
func (inv *CompressedInverted) VocabularySize() int { return len(inv.postings) }

// DocFreq returns |I(w)| without decompressing.
func (inv *CompressedInverted) DocFreq(w string) int { return inv.postings[w].count }

// Bytes returns the total compressed posting storage, for the
// space-efficiency bench.
func (inv *CompressedInverted) Bytes() int {
	n := 0
	for _, l := range inv.postings {
		n += len(l.data)
	}
	return n
}

// listIterator walks a compressed list without materializing it.
type listIterator struct {
	data []byte
	cur  int
	done bool
}

func (l compressedList) iterator() *listIterator {
	it := &listIterator{data: l.data}
	it.next()
	return it
}

// next advances to the following ID; done is set past the end.
func (it *listIterator) next() {
	if len(it.data) == 0 {
		it.done = true
		return
	}
	gap, n := binary.Uvarint(it.data)
	it.data = it.data[n:]
	it.cur += int(gap)
}

// Lookup returns the sorted IDs of records satisfying conjunctive query q,
// identical in contract to Inverted.Lookup.
func (inv *CompressedInverted) Lookup(q []string) []int {
	if len(q) == 0 {
		return nil
	}
	lists := make([]compressedList, len(q))
	for i, w := range q {
		l, ok := inv.postings[w]
		if !ok || l.count == 0 {
			return nil
		}
		lists[i] = l
	}
	// Rarest first, as in the plain index.
	sort.Slice(lists, func(i, j int) bool { return lists[i].count < lists[j].count })

	its := make([]*listIterator, len(lists))
	for i, l := range lists {
		its[i] = l.iterator()
	}
	var out []int
	// k-way conjunctive merge: advance the lagging iterators toward the
	// current candidate from the rarest list.
	for !its[0].done {
		candidate := its[0].cur
		matched := true
		for _, it := range its[1:] {
			for !it.done && it.cur < candidate {
				it.next()
			}
			if it.done {
				return out
			}
			if it.cur != candidate {
				matched = false
				break
			}
		}
		if matched {
			out = append(out, candidate)
		}
		its[0].next()
	}
	return out
}

// Count returns |q(D)|.
func (inv *CompressedInverted) Count(q []string) int { return len(inv.Lookup(q)) }
