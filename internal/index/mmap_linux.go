//go:build linux

package index

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The third return reports a
// real mapping (true here); the returned release func unmaps.
func mmapFile(f *os.File, size int) ([]byte, func() error, bool, error) {
	if size == 0 {
		return nil, func() error { return nil }, true, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false, err
	}
	return b, func() error { return syscall.Munmap(b) }, true, nil
}
