package index

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// buildDictFor builds a frozen dictionary over the records' vocabulary,
// exactly as querypool.Generate does (sorted corpus scan).
func buildDictFor(recs []*relational.Record, tk *tokenize.Tokenizer) *tokenize.Dict {
	seen := map[string]struct{}{}
	for _, r := range recs {
		for _, w := range r.Tokens(tk) {
			seen[w] = struct{}{}
		}
	}
	vocab := make([]string, 0, len(seen))
	for w := range seen {
		vocab = append(vocab, w)
	}
	sort.Strings(vocab)
	return tokenize.BuildDict(vocab)
}

// The core interning equivalence property: on random corpora, the
// ID-keyed indexes (plain and compressed) agree with the string index on
// every Lookup and Count — including queries with out-of-corpus keywords,
// which resolve to "no ID" and must return empty, matching the string
// index's miss.
func TestInvertedIDsMatchesStringIndex(t *testing.T) {
	tk := tokenize.New()
	rng := stats.NewRNG(41)
	vocab := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg"}

	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(50)
		recs := make([]*relational.Record, n)
		for i := 0; i < n; i++ {
			k := 1 + rng.Intn(5)
			doc := ""
			for j := 0; j < k; j++ {
				doc += vocab[rng.Intn(len(vocab))] + " "
			}
			recs[i] = &relational.Record{ID: i, Values: []string{doc}}
		}
		dict := buildDictFor(recs, tk)
		ref := BuildInverted(recs, tk)
		ids := BuildInvertedIDs(recs, tk, dict, 1)
		comp := BuildCompressedInvertedIDs(recs, tk, dict)

		for probe := 0; probe < 20; probe++ {
			qlen := 1 + rng.Intn(3)
			q := make([]string, qlen)
			for j := range q {
				if rng.Intn(10) == 0 {
					q[j] = "zz-missing" // out-of-corpus keyword
				} else {
					q[j] = vocab[rng.Intn(len(vocab))]
				}
			}
			want := ref.Lookup(q)

			qids, ok := dict.Resolve(q)
			if !ok {
				// Some keyword has no ID: the string index must agree
				// that nothing matches.
				if len(want) != 0 {
					t.Fatalf("trial %d: Resolve(%v) failed but string Lookup found %v", trial, q, want)
				}
				continue
			}
			got := ids.Lookup(qids)
			if !u32Equal(got, want) {
				t.Fatalf("trial %d: InvertedIDs.Lookup(%v) = %v, want %v", trial, q, got, want)
			}
			if c := ids.Count(qids); c != len(want) {
				t.Fatalf("trial %d: InvertedIDs.Count(%v) = %d, want %d", trial, q, c, len(want))
			}
			gotC := comp.Lookup(qids)
			if !u32Equal(gotC, want) {
				t.Fatalf("trial %d: CompressedInvertedIDs.Lookup(%v) = %v, want %v", trial, q, gotC, want)
			}
			if c := comp.Count(qids); c != len(want) {
				t.Fatalf("trial %d: CompressedInvertedIDs.Count(%v) = %d, want %d", trial, q, c, len(want))
			}
		}
	}
}

func u32Equal(got []uint32, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i, v := range got {
		if int(v) != want[i] {
			return false
		}
	}
	return true
}

func TestBuildInvertedIDsParallelMatchesSequential(t *testing.T) {
	tk := tokenize.New()
	rng := stats.NewRNG(7)
	vocab := []string{"aa", "bb", "cc", "dd", "ee"}
	n := 4000 // above the minShard clamp so workers actually shard
	recs := make([]*relational.Record, n)
	for i := 0; i < n; i++ {
		doc := vocab[rng.Intn(len(vocab))] + " " + vocab[rng.Intn(len(vocab))]
		recs[i] = &relational.Record{ID: i, Values: []string{doc}}
	}
	dict := buildDictFor(recs, tk)
	seq := BuildInvertedIDs(recs, tk, dict, 1)
	for _, workers := range []int{2, 4, 16} {
		par := BuildInvertedIDs(recs, tk, dict, workers)
		if !reflect.DeepEqual(seq.postings, par.postings) {
			t.Fatalf("workers=%d: posting lists differ from sequential build", workers)
		}
	}
}

// IntersectU32 properties: commutative, sorted, subset of both inputs —
// across the merge and gallop regimes — and correct when dst aliases a.
func TestIntersectU32Properties(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		a := sortedUniqueU32(aRaw)
		b := sortedUniqueU32(bRaw)
		ab := IntersectU32(nil, a, b)
		ba := IntersectU32(nil, b, a)
		if !reflect.DeepEqual(ab, ba) {
			return false
		}
		inA := toSetU32(a)
		inB := toSetU32(b)
		for i, v := range ab {
			if i > 0 && ab[i-1] >= v {
				return false
			}
			if !inA[v] || !inB[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectU32Gallop(t *testing.T) {
	// Long vs short list exercises the galloping branch (>16x ratio).
	long := make([]uint32, 1000)
	for i := range long {
		long[i] = uint32(2 * i)
	}
	short := []uint32{0, 3, 40, 1998, 3000}
	want := []uint32{0, 40, 1998}
	if got := IntersectU32(nil, short, long); !reflect.DeepEqual(got, want) {
		t.Fatalf("gallop intersect = %v, want %v", got, want)
	}
	if got := IntersectU32(nil, long, short); !reflect.DeepEqual(got, want) {
		t.Fatalf("gallop intersect (swapped) = %v, want %v", got, want)
	}
}

func TestIntersectU32DstAliasesA(t *testing.T) {
	// The LookupInto re-intersection pattern: result = IntersectU32(
	// result[:0], result, next). The accumulated result is never longer
	// than the next list there; replicate that contract.
	acc := []uint32{1, 3, 5, 7, 9}
	next := []uint32{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	got := IntersectU32(acc[:0], acc, next)
	want := []uint32{3, 5, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("aliased intersect = %v, want %v", got, want)
	}
}

func TestLookupIntoReusesScratch(t *testing.T) {
	tk := tokenize.New()
	recs := figure1Local()
	dict := buildDictFor(recs, tk)
	inv := BuildInvertedIDs(recs, tk, dict, 1)

	q1, _ := dict.Resolve([]string{"noodle", "house"})
	q2, _ := dict.Resolve([]string{"thai"})
	scratch := make([]uint32, 0, 16)
	r1 := inv.LookupInto(q1, scratch)
	if !u32Equal(r1, []int{0, 1, 3}) {
		t.Fatalf("LookupInto(noodle house) = %v", r1)
	}
	r2 := inv.LookupInto(q2, r1[:0]) // reuse the same backing array
	if !u32Equal(r2, []int{0, 2, 3}) {
		t.Fatalf("LookupInto(thai) after reuse = %v", r2)
	}
}

func TestForwardDense(t *testing.T) {
	f := NewForwardDense(3)
	f.Add(0, 10)
	f.Add(0, 11)
	f.Add(2, 10)
	if f.TotalEntries() != 3 || f.Len() != 2 {
		t.Fatalf("entries=%d live=%d, want 3/2", f.TotalEntries(), f.Len())
	}
	if got := f.List(0); !reflect.DeepEqual(got, []uint32{10, 11}) {
		t.Fatalf("List(0) = %v", got)
	}
	if got := f.Remove(0); !reflect.DeepEqual(got, []uint32{10, 11}) {
		t.Fatalf("Remove(0) = %v", got)
	}
	if f.List(0) != nil || f.TotalEntries() != 1 || f.Len() != 1 {
		t.Fatalf("post-remove state wrong: list=%v entries=%d live=%d",
			f.List(0), f.TotalEntries(), f.Len())
	}
	if got := f.Remove(1); len(got) != 0 {
		t.Fatalf("Remove(empty) = %v, want empty", got)
	}
}

func sortedUniqueU32(raw []uint8) []uint32 {
	m := map[uint32]bool{}
	for _, v := range raw {
		m[uint32(v)] = true
	}
	out := make([]uint32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func toSetU32(s []uint32) map[uint32]bool {
	m := make(map[uint32]bool, len(s))
	for _, v := range s {
		m[v] = true
	}
	return m
}
