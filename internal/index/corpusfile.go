package index

// The on-disk corpus cache ("SCORP001"): a versioned, checksummed,
// memory-mappable serialization of an interned dictionary plus a block
// d-gap inverted index. The layout keeps everything the lookup kernels
// touch per-probe — the posting payloads — in one contiguous section that
// is used directly out of the mapped region, while the small per-token
// metadata (counts, skip entries) is decoded into heap slices at open.
//
//	header  64 B   magic, section lengths, per-section CRC32s
//	vocab          vocabCount × (uvarint len ‖ word bytes), sorted order
//	data           posting block payloads (block.go encoding)
//	meta           counts[vocab] ‖ skipIdx[vocab+1] ‖ skips[skipCount]×16 B
//
// All integers little-endian. Every section is CRC32-verified at open
// (and the header carries its own CRC), so the hot-path block decoder may
// treat a malformed block after open as a programming error rather than
// an I/O condition.
//
// The writer streams: it reserves the header, emits vocab, then accepts
// (token,record) pairs in ascending order — the k-way merge of the
// external sorter feeds it directly — flushing each 128-ID block as it
// fills, and finally writes meta and rewrites the header in place. Peak
// writer memory is one pending block plus the skip entries (~16 bytes per
// 128 postings), independent of corpus size.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"smartcrawl/internal/tokenize"
)

const (
	corpusMagic      = "SCORP001"
	corpusHeaderSize = 64
)

type corpusHeader struct {
	records  uint64
	vocab    uint64
	skips    uint64
	vocabLen uint64
	dataLen  uint64
	vocabCRC uint32
	dataCRC  uint32
	metaCRC  uint32
}

func (h *corpusHeader) marshal() [corpusHeaderSize]byte {
	var b [corpusHeaderSize]byte
	copy(b[0:8], corpusMagic)
	binary.LittleEndian.PutUint64(b[8:], h.records)
	binary.LittleEndian.PutUint64(b[16:], h.vocab)
	binary.LittleEndian.PutUint64(b[24:], h.skips)
	binary.LittleEndian.PutUint64(b[32:], h.vocabLen)
	binary.LittleEndian.PutUint64(b[40:], h.dataLen)
	binary.LittleEndian.PutUint32(b[48:], h.vocabCRC)
	binary.LittleEndian.PutUint32(b[52:], h.dataCRC)
	binary.LittleEndian.PutUint32(b[56:], h.metaCRC)
	binary.LittleEndian.PutUint32(b[60:], crc32.ChecksumIEEE(b[:60]))
	return b
}

func unmarshalCorpusHeader(b []byte) (corpusHeader, error) {
	var h corpusHeader
	if len(b) < corpusHeaderSize {
		return h, fmt.Errorf("index: corpus file shorter than its %d-byte header", corpusHeaderSize)
	}
	if string(b[0:8]) != corpusMagic {
		return h, fmt.Errorf("index: not a corpus cache (magic %q, want %q)", b[0:8], corpusMagic)
	}
	if got, want := crc32.ChecksumIEEE(b[:60]), binary.LittleEndian.Uint32(b[60:]); got != want {
		return h, fmt.Errorf("index: corpus header checksum mismatch (%08x vs %08x)", got, want)
	}
	h.records = binary.LittleEndian.Uint64(b[8:])
	h.vocab = binary.LittleEndian.Uint64(b[16:])
	h.skips = binary.LittleEndian.Uint64(b[24:])
	h.vocabLen = binary.LittleEndian.Uint64(b[32:])
	h.dataLen = binary.LittleEndian.Uint64(b[40:])
	h.vocabCRC = binary.LittleEndian.Uint32(b[48:])
	h.dataCRC = binary.LittleEndian.Uint32(b[52:])
	h.metaCRC = binary.LittleEndian.Uint32(b[56:])
	return h, nil
}

// CorpusWriter streams a corpus cache to disk. Pairs must arrive in
// strictly ascending (token, record) order; exact duplicates are merged.
type CorpusWriter struct {
	f       *os.File
	bw      *bufio.Writer
	hdr     corpusHeader
	counts  []uint32
	skipIdx []uint32
	skips   []blockSkip
	filled  int // skipIdx entries assigned so far

	curToken int64 // token currently accumulating; -1 before first Add
	lastRec  uint32
	block    []uint32
	scratch  []byte
	skScr    []blockSkip
	crc      uint32 // running data-section CRC
	done     bool
}

// NewCorpusWriter creates path (truncating) and writes the vocabulary of
// the frozen dictionary d. records is the corpus size recorded in the
// header and reported by OpenCorpus.
func NewCorpusWriter(path string, d *tokenize.Dict, records int) (*CorpusWriter, error) {
	if !d.Frozen() {
		return nil, fmt.Errorf("index: corpus writer needs a frozen dictionary")
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	cw := &CorpusWriter{
		f:        f,
		bw:       bufio.NewWriterSize(f, 1<<20),
		counts:   make([]uint32, d.Len()),
		skipIdx:  make([]uint32, d.Len()+1),
		curToken: -1,
		block:    make([]uint32, 0, PostingBlockSize),
	}
	cw.hdr.records = uint64(records)
	cw.hdr.vocab = uint64(d.Len())
	var zero [corpusHeaderSize]byte
	if _, err := cw.bw.Write(zero[:]); err != nil {
		return nil, cw.fail(err)
	}
	vcrc := uint32(0)
	var lbuf [binary.MaxVarintLen64]byte
	for id := 0; id < d.Len(); id++ {
		w := d.Word(uint32(id))
		n := binary.PutUvarint(lbuf[:], uint64(len(w)))
		if _, err := cw.bw.Write(lbuf[:n]); err != nil {
			return nil, cw.fail(err)
		}
		if _, err := cw.bw.WriteString(w); err != nil {
			return nil, cw.fail(err)
		}
		vcrc = crc32.Update(vcrc, crc32.IEEETable, lbuf[:n])
		vcrc = crc32.Update(vcrc, crc32.IEEETable, []byte(w))
		cw.hdr.vocabLen += uint64(n + len(w))
	}
	cw.hdr.vocabCRC = vcrc
	return cw, nil
}

func (cw *CorpusWriter) fail(err error) error {
	cw.done = true
	cw.f.Close()
	os.Remove(cw.f.Name())
	return err
}

// Add appends one (token, record) posting. Calls must be ordered: token
// non-decreasing, and records strictly ascending within a token (an equal
// pair is merged; a descending one is a caller bug and panics).
func (cw *CorpusWriter) Add(token, rec uint32) error {
	if cw.done {
		return fmt.Errorf("index: Add on a finished corpus writer")
	}
	if int64(token) != cw.curToken {
		if int64(token) < cw.curToken {
			panic(fmt.Sprintf("index: corpus writer tokens out of order (%d after %d)", token, cw.curToken))
		}
		if int(token) >= len(cw.counts) {
			return fmt.Errorf("index: token ID %d outside the %d-word dictionary", token, len(cw.counts))
		}
		if err := cw.flushBlock(); err != nil {
			return err
		}
		// Tokens between the previous one and this one have no postings:
		// their skipIdx entries all point at the current skip position.
		for cw.filled <= int(token) {
			cw.skipIdx[cw.filled] = uint32(len(cw.skips))
			cw.filled++
		}
		cw.curToken = int64(token)
	} else {
		if rec == cw.lastRec && (len(cw.block) > 0 || cw.counts[token] > 0) {
			return nil // merged duplicate from overlapping runs
		}
		if rec < cw.lastRec {
			panic(fmt.Sprintf("index: corpus writer records out of order (%d after %d)", rec, cw.lastRec))
		}
	}
	cw.block = append(cw.block, rec)
	cw.lastRec = rec
	cw.counts[token]++
	if len(cw.block) == PostingBlockSize {
		return cw.flushBlock()
	}
	return nil
}

func (cw *CorpusWriter) flushBlock() error {
	if len(cw.block) == 0 {
		return nil
	}
	cw.scratch, cw.skScr = appendPostingBlocks(cw.scratch[:0], cw.skScr[:0], cw.block)
	sk := cw.skScr[0]
	if cw.hdr.dataLen > maxRecordID {
		return cw.fail(fmt.Errorf("index: corpus data section exceeds 4 GiB (block offsets are uint32)"))
	}
	sk.off = uint32(cw.hdr.dataLen)
	if _, err := cw.bw.Write(cw.scratch); err != nil {
		return cw.fail(err)
	}
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, cw.scratch)
	cw.hdr.dataLen += uint64(len(cw.scratch))
	cw.skips = append(cw.skips, sk)
	cw.block = cw.block[:0]
	return nil
}

// Finish flushes the final block, writes the meta section, rewrites the
// header in place, and syncs the file. The writer is unusable afterwards.
func (cw *CorpusWriter) Finish() error {
	if cw.done {
		return fmt.Errorf("index: Finish on a finished corpus writer")
	}
	if err := cw.flushBlock(); err != nil {
		return err
	}
	for cw.filled < len(cw.skipIdx) {
		cw.skipIdx[cw.filled] = uint32(len(cw.skips))
		cw.filled++
	}
	cw.hdr.skips = uint64(len(cw.skips))
	cw.hdr.dataCRC = cw.crc

	mcrc := uint32(0)
	var b4 [4]byte
	put := func(v uint32) error {
		binary.LittleEndian.PutUint32(b4[:], v)
		mcrc = crc32.Update(mcrc, crc32.IEEETable, b4[:])
		_, err := cw.bw.Write(b4[:])
		return err
	}
	for _, v := range cw.counts {
		if err := put(v); err != nil {
			return cw.fail(err)
		}
	}
	for _, v := range cw.skipIdx {
		if err := put(v); err != nil {
			return cw.fail(err)
		}
	}
	var sb [blockSkipBytes]byte
	for _, sk := range cw.skips {
		binary.LittleEndian.PutUint32(sb[0:], sk.first)
		binary.LittleEndian.PutUint32(sb[4:], sk.last)
		binary.LittleEndian.PutUint32(sb[8:], sk.off)
		binary.LittleEndian.PutUint16(sb[12:], sk.n)
		binary.LittleEndian.PutUint16(sb[14:], sk.blen)
		mcrc = crc32.Update(mcrc, crc32.IEEETable, sb[:])
		if _, err := cw.bw.Write(sb[:]); err != nil {
			return cw.fail(err)
		}
	}
	cw.hdr.metaCRC = mcrc
	if err := cw.bw.Flush(); err != nil {
		return cw.fail(err)
	}
	hb := cw.hdr.marshal()
	if _, err := cw.f.WriteAt(hb[:], 0); err != nil {
		return cw.fail(err)
	}
	if err := cw.f.Sync(); err != nil {
		return cw.fail(err)
	}
	cw.done = true
	return cw.f.Close()
}

// WriteCorpus serializes an in-memory index and its dictionary as a
// corpus cache at path — the small-corpus and test-fixture path; large
// corpora stream through CorpusBuilder instead.
func WriteCorpus(path string, d *tokenize.Dict, inv *CompressedInvertedIDs) error {
	cw, err := NewCorpusWriter(path, d, inv.Size())
	if err != nil {
		return err
	}
	var buf []uint32
	for id := 0; id < d.Len(); id++ {
		for sk := inv.skipIdx[id]; sk < inv.skipIdx[id+1]; sk++ {
			buf = mustDecodePostingBlock(buf, inv.data, inv.skips[sk])
			for _, r := range buf {
				if err := cw.Add(uint32(id), r); err != nil {
					return err
				}
			}
		}
	}
	return cw.Finish()
}

// CorpusFile is an opened corpus cache: the dictionary and an index whose
// posting payloads read straight out of the mapped file region.
type CorpusFile struct {
	Dict *tokenize.Dict
	Inv  *CompressedInvertedIDs

	path    string
	mapped  []byte
	unmap   func() error
	byMmap  bool
	records int
}

// OpenCorpus maps the corpus cache at path, verifying the header and all
// three section checksums before returning. On platforms without mmap
// support the file is read into memory instead (Mapped reports which).
func OpenCorpus(path string) (*CorpusFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("index: corpus cache %s too large to map", path)
	}
	mapped, unmap, byMmap, err := mmapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("index: mapping %s: %w", path, err)
	}
	cf, err := parseCorpus(path, mapped)
	if err != nil {
		unmap()
		return nil, fmt.Errorf("index: corpus cache %s: %w", path, err)
	}
	cf.mapped = mapped
	cf.unmap = unmap
	cf.byMmap = byMmap
	return cf, nil
}

func parseCorpus(path string, b []byte) (*CorpusFile, error) {
	h, err := unmarshalCorpusHeader(b)
	if err != nil {
		return nil, err
	}
	metaLen := 4*h.vocab + 4*(h.vocab+1) + blockSkipBytes*h.skips
	want := corpusHeaderSize + h.vocabLen + h.dataLen + metaLen
	if uint64(len(b)) != want {
		return nil, fmt.Errorf("file is %d bytes, header implies %d", len(b), want)
	}
	vocabSec := b[corpusHeaderSize : corpusHeaderSize+h.vocabLen]
	dataSec := b[corpusHeaderSize+h.vocabLen : corpusHeaderSize+h.vocabLen+h.dataLen]
	metaSec := b[corpusHeaderSize+h.vocabLen+h.dataLen:]
	if got := crc32.ChecksumIEEE(vocabSec); got != h.vocabCRC {
		return nil, fmt.Errorf("vocab checksum mismatch (%08x vs %08x)", got, h.vocabCRC)
	}
	if got := crc32.ChecksumIEEE(dataSec); got != h.dataCRC {
		return nil, fmt.Errorf("data checksum mismatch (%08x vs %08x)", got, h.dataCRC)
	}
	if got := crc32.ChecksumIEEE(metaSec); got != h.metaCRC {
		return nil, fmt.Errorf("meta checksum mismatch (%08x vs %08x)", got, h.metaCRC)
	}

	words := make([]string, 0, h.vocab)
	rest := vocabSec
	for i := uint64(0); i < h.vocab; i++ {
		l, w := binary.Uvarint(rest)
		if w <= 0 || uint64(len(rest)) < uint64(w)+l {
			return nil, fmt.Errorf("truncated vocab entry %d", i)
		}
		words = append(words, string(rest[w:uint64(w)+l]))
		rest = rest[uint64(w)+l:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%d trailing vocab bytes", len(rest))
	}

	inv := &CompressedInvertedIDs{
		skipIdx: make([]uint32, h.vocab+1),
		counts:  make([]uint32, h.vocab),
		skips:   make([]blockSkip, h.skips),
		data:    dataSec,
		size:    int(h.records),
	}
	off := 0
	for i := range inv.counts {
		inv.counts[i] = binary.LittleEndian.Uint32(metaSec[off:])
		off += 4
	}
	for i := range inv.skipIdx {
		inv.skipIdx[i] = binary.LittleEndian.Uint32(metaSec[off:])
		off += 4
	}
	for i := range inv.skips {
		inv.skips[i] = blockSkip{
			first: binary.LittleEndian.Uint32(metaSec[off:]),
			last:  binary.LittleEndian.Uint32(metaSec[off+4:]),
			off:   binary.LittleEndian.Uint32(metaSec[off+8:]),
			n:     binary.LittleEndian.Uint16(metaSec[off+12:]),
			blen:  binary.LittleEndian.Uint16(metaSec[off+14:]),
		}
		off += blockSkipBytes
	}
	// Structural validation so lookups can trust the metadata blindly.
	prev := uint32(0)
	for i, v := range inv.skipIdx {
		if v < prev || uint64(v) > h.skips {
			return nil, fmt.Errorf("skip index entry %d out of order", i)
		}
		prev = v
	}
	if uint64(inv.skipIdx[h.vocab]) != h.skips {
		return nil, fmt.Errorf("skip index sentinel %d, want %d", inv.skipIdx[h.vocab], h.skips)
	}
	for i, sk := range inv.skips {
		if sk.n == 0 || sk.n > PostingBlockSize {
			return nil, fmt.Errorf("skip entry %d has %d ids", i, sk.n)
		}
		if int(sk.off)+int(sk.blen) > len(dataSec) {
			return nil, fmt.Errorf("skip entry %d payload outside data section", i)
		}
	}
	for id := uint64(0); id < h.vocab; id++ {
		n := 0
		for sk := inv.skipIdx[id]; sk < inv.skipIdx[id+1]; sk++ {
			n += int(inv.skips[sk].n)
		}
		if n != int(inv.counts[id]) {
			return nil, fmt.Errorf("token %d skip entries hold %d ids, counts say %d", id, n, inv.counts[id])
		}
	}

	return &CorpusFile{
		Dict:    tokenize.BuildDict(words),
		Inv:     inv,
		path:    path,
		records: int(h.records),
	}, nil
}

// Records returns the corpus size recorded at write time.
func (cf *CorpusFile) Records() int { return cf.records }

// Mapped reports whether the postings are memory-mapped (vs read into
// heap on platforms without mmap).
func (cf *CorpusFile) Mapped() bool { return cf.byMmap }

// Path returns the file the corpus was opened from.
func (cf *CorpusFile) Path() string { return cf.path }

// Close unmaps the file. The Dict and Inv must not be used afterwards.
func (cf *CorpusFile) Close() error {
	if cf.unmap == nil {
		return nil
	}
	u := cf.unmap
	cf.unmap = nil
	cf.Inv = nil
	return u()
}
