package index

import (
	"slices"
	"sync"

	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// InvertedIDs is the interned-token inverted index: posting lists are
// keyed by tokenize.Dict token ID (a dense slice, no hashing) and hold
// sorted uint32 record IDs. Conjunctive lookups run as sorted-slice
// merge/galloping intersections — the integer kernel behind the paper's
// Figure 3(a) — with zero map probes and zero string comparisons.
//
// Tokens outside the dictionary are not indexed; they cannot appear in a
// pool query (see tokenize.Dict), so lookups are unaffected.
type InvertedIDs struct {
	postings [][]uint32 // token ID → sorted record IDs
	size     int
}

// BuildInvertedIDs indexes the records' tokens under dictionary d. Record
// IDs must be non-negative; lists come out sorted because IDs are sorted
// defensively after the build, exactly as BuildInvertedN does.
func BuildInvertedIDs(recs []*relational.Record, tk *tokenize.Tokenizer, d *tokenize.Dict, workers int) *InvertedIDs {
	inv := &InvertedIDs{postings: make([][]uint32, d.Len()), size: len(recs)}
	if workers > len(recs)/minShard {
		workers = len(recs) / minShard
	}
	if workers <= 1 {
		for _, r := range recs {
			for _, w := range r.Tokens(tk) {
				if id, ok := d.ID(w); ok {
					inv.postings[id] = append(inv.postings[id], uint32(r.ID))
				}
			}
		}
		sortPostingsU32(inv.postings)
		return inv
	}
	shards := make([][][]uint32, workers)
	var wg sync.WaitGroup
	chunk := (len(recs) + workers - 1) / workers
	for s := 0; s < workers; s++ {
		lo, hi := s*chunk, (s+1)*chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			m := make([][]uint32, d.Len())
			for _, r := range recs[lo:hi] {
				for _, w := range r.Tokens(tk) {
					if id, ok := d.ID(w); ok {
						m[id] = append(m[id], uint32(r.ID))
					}
				}
			}
			shards[s] = m
		}(s, lo, hi)
	}
	wg.Wait()
	// Merge in shard order (contiguous chunks keep IDs grouped), then
	// sort defensively so the layout matches the sequential build for
	// any worker count.
	for _, m := range shards {
		for id, p := range m {
			inv.postings[id] = append(inv.postings[id], p...)
		}
	}
	sortPostingsU32(inv.postings)
	return inv
}

// BuildInvertedIDsObs is BuildInvertedIDs with build observability,
// mirroring BuildInvertedNObs: shard count and wall-clock land in the
// sink under phase "index_build". A nil sink is exactly BuildInvertedIDs.
func BuildInvertedIDsObs(recs []*relational.Record, tk *tokenize.Tokenizer, d *tokenize.Dict, workers int, o *obs.Obs) *InvertedIDs {
	if o != nil {
		defer o.Phase("index_build")()
	}
	inv := BuildInvertedIDs(recs, tk, d, workers)
	if o != nil {
		effective := workers
		if effective > len(recs)/minShard {
			effective = len(recs) / minShard
		}
		if effective < 1 {
			effective = 1
		}
		o.IndexBuilt(effective)
	}
	return inv
}

func sortPostingsU32(postings [][]uint32) {
	for _, p := range postings {
		slices.Sort(p)
	}
}

// sortListsByLen orders a handful of posting lists shortest-first. Query
// lists are tiny (≤ a few keywords), and an insertion sort keeps the
// slice off the heap — sort.Slice's interface capture forced an
// allocation per lookup.
func sortListsByLen(lists [][]uint32) {
	for i := 1; i < len(lists); i++ {
		for j := i; j > 0 && len(lists[j]) < len(lists[j-1]); j-- {
			lists[j], lists[j-1] = lists[j-1], lists[j]
		}
	}
}

// Size returns the number of indexed records.
func (inv *InvertedIDs) Size() int { return inv.size }

// DocFreq returns |I(w)| for token ID id.
func (inv *InvertedIDs) DocFreq(id uint32) int {
	if int(id) >= len(inv.postings) {
		return 0
	}
	return len(inv.postings[id])
}

// Postings returns the posting list for token ID id (shared slice;
// callers must not mutate).
func (inv *InvertedIDs) Postings(id uint32) []uint32 {
	if int(id) >= len(inv.postings) {
		return nil
	}
	return inv.postings[id]
}

// Lookup returns the sorted record IDs satisfying the conjunctive query q
// (token IDs) — Inverted.Lookup on the integer kernel. The result is
// freshly allocated and safe to retain.
func (inv *InvertedIDs) Lookup(q []uint32) []uint32 {
	return inv.LookupInto(q, nil)
}

// LookupInto is Lookup with a caller-supplied scratch buffer: the result
// is built in scratch's backing array when capacity allows, so resolvers
// looping over many queries can reuse one allocation. The returned slice
// aliases scratch; callers that retain it must copy.
func (inv *InvertedIDs) LookupInto(q []uint32, scratch []uint32) []uint32 {
	if len(q) == 0 {
		return nil
	}
	lists := make([][]uint32, 0, 8)
	for _, id := range q {
		p := inv.Postings(id)
		if len(p) == 0 {
			return nil
		}
		lists = append(lists, p)
	}
	// Rarest first: the intersection can never exceed the smallest list.
	sortListsByLen(lists)
	if len(lists) == 1 {
		return append(scratch[:0], lists[0]...)
	}
	result := IntersectU32(scratch[:0], lists[0], lists[1])
	for _, p := range lists[2:] {
		if len(result) == 0 {
			return nil
		}
		result = IntersectU32(result[:0], result, p)
	}
	return result
}

// Count returns |q(D)| for the token-ID query q, allocation-free: the
// rarest list is intersected through without materializing results.
func (inv *InvertedIDs) Count(q []uint32) int {
	if len(q) == 0 {
		return 0
	}
	lists := make([][]uint32, 0, 8)
	for _, id := range q {
		p := inv.Postings(id)
		if len(p) == 0 {
			return 0
		}
		lists = append(lists, p)
	}
	sortListsByLen(lists)
	if len(lists) == 1 {
		return len(lists[0])
	}
	// Count by probing each candidate of the rarest list against every
	// other list with galloping search — no output buffer needed.
	n := 0
outer:
	for _, v := range lists[0] {
		for _, p := range lists[1:] {
			if !containsU32(p, v) {
				continue outer
			}
		}
		n++
	}
	return n
}

// IntersectU32 appends the intersection of sorted slices a and b to dst
// and returns it. When the lengths are lopsided it gallops (binary
// search) over the longer list, mirroring the string index's intersect.
// dst may alias a (the in-place re-intersection pattern); it must not
// alias b.
func IntersectU32(dst, a, b []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) > 16*len(a) {
		for _, v := range a {
			if containsU32(b, v) {
				dst = append(dst, v)
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		switch {
		case av < bv:
			i++
		case av > bv:
			j++
		default:
			dst = append(dst, av)
			i++
			j++
		}
	}
	return dst
}

// containsU32 reports whether sorted slice p contains v (binary search).
func containsU32(p []uint32, v uint32) bool {
	lo, hi := 0, len(p)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(p) && p[lo] == v
}

// ForwardDense is the slice-backed forward index of Figure 3(b) for dense
// record IDs: F(d) lives at lists[d], so the per-removal lookup is an
// array index instead of a map probe. Query IDs are appended in
// ascending order by construction (the setup loop walks pool queries in
// ID order), which RemoveList's callers rely on for binary search.
type ForwardDense struct {
	lists   [][]uint32
	entries int
}

// NewForwardDense returns a forward index over records 0..n-1.
func NewForwardDense(n int) *ForwardDense {
	return &ForwardDense{lists: make([][]uint32, n)}
}

// Add records that query qid is satisfied by record rid.
func (f *ForwardDense) Add(rid int, qid uint32) {
	f.lists[rid] = append(f.lists[rid], qid)
	f.entries++
}

// Grow pre-sizes record rid's list for n entries.
func (f *ForwardDense) Grow(rid, n int) {
	if cap(f.lists[rid]) < n {
		l := make([]uint32, len(f.lists[rid]), n)
		copy(l, f.lists[rid])
		f.lists[rid] = l
	}
}

// List returns F(rid) (shared slice; callers must not mutate).
func (f *ForwardDense) List(rid int) []uint32 { return f.lists[rid] }

// Remove returns F(rid) and drops it from the index; the record is
// leaving D and its list will not be consulted again. The returned slice
// stays valid until the caller's next allocation churn (it is the
// original backing array).
func (f *ForwardDense) Remove(rid int) []uint32 {
	l := f.lists[rid]
	f.lists[rid] = nil
	f.entries -= len(l)
	return l
}

// Take is Remove without the shared entry-counter update — the race-free
// form for shard-parallel batch removal, where each shard owns a disjoint
// record range but the counter is shared. The caller settles the counter
// once per batch with DropEntries.
func (f *ForwardDense) Take(rid int) []uint32 {
	l := f.lists[rid]
	f.lists[rid] = nil
	return l
}

// DropEntries subtracts n entries from the total, balancing a batch of
// Take calls.
func (f *ForwardDense) DropEntries(n int) { f.entries -= n }

// Len returns the number of records with live forward lists.
func (f *ForwardDense) Len() int {
	n := 0
	for _, l := range f.lists {
		if len(l) > 0 {
			n++
		}
	}
	return n
}

// TotalEntries returns Σ|F(d)| over live lists — the Appendix B term.
func (f *ForwardDense) TotalEntries() int { return f.entries }
