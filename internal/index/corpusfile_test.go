package index

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// corpusFixture builds a zipfy random corpus large enough to span many
// posting blocks.
func corpusFixture(n, vocabSize int, seed uint64) ([]*relational.Record, *tokenize.Tokenizer, *tokenize.Dict) {
	tk := tokenize.New()
	rng := stats.NewRNG(seed)
	zipf := stats.NewZipf(rng, 1.05, vocabSize)
	recs := make([]*relational.Record, n)
	for i := range recs {
		var sb strings.Builder
		for j := 0; j < 3+rng.Intn(5); j++ {
			fmt.Fprintf(&sb, "w%04d ", zipf.Draw())
		}
		recs[i] = &relational.Record{ID: i, Values: []string{sb.String()}}
	}
	return recs, tk, buildDictFor(recs, tk)
}

func allSmallQueries(d *tokenize.Dict, stride int) [][]uint32 {
	var qs [][]uint32
	for a := 0; a < d.Len(); a += stride {
		qs = append(qs, []uint32{uint32(a)})
		for b := a + stride; b < d.Len(); b += 3 * stride {
			qs = append(qs, []uint32{uint32(a), uint32(b)})
		}
	}
	return qs
}

func TestCorpusFileRoundTrip(t *testing.T) {
	recs, tk, d := corpusFixture(3000, 60, 11)
	inv := BuildCompressedInvertedIDs(recs, tk, d)
	path := filepath.Join(t.TempDir(), "corpus.scorp")
	if err := WriteCorpus(path, d, inv); err != nil {
		t.Fatalf("WriteCorpus: %v", err)
	}
	cf, err := OpenCorpus(path)
	if err != nil {
		t.Fatalf("OpenCorpus: %v", err)
	}
	defer cf.Close()

	if cf.Records() != len(recs) || cf.Inv.Size() != len(recs) {
		t.Fatalf("records: %d/%d, want %d", cf.Records(), cf.Inv.Size(), len(recs))
	}
	if cf.Dict.Len() != d.Len() {
		t.Fatalf("vocab: %d, want %d", cf.Dict.Len(), d.Len())
	}
	for id := 0; id < d.Len(); id++ {
		if cf.Dict.Word(uint32(id)) != d.Word(uint32(id)) {
			t.Fatalf("word %d: %q vs %q", id, cf.Dict.Word(uint32(id)), d.Word(uint32(id)))
		}
		if cf.Inv.DocFreq(uint32(id)) != inv.DocFreq(uint32(id)) {
			t.Fatalf("DocFreq(%d) mismatch", id)
		}
	}
	for _, q := range allSmallQueries(d, 1) {
		want := inv.Lookup(q)
		got := cf.Inv.Lookup(q)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Lookup(%v): %v vs %v", q, got, want)
		}
		if cf.Inv.Count(q) != len(want) {
			t.Fatalf("Count(%v): %d vs %d", q, cf.Inv.Count(q), len(want))
		}
	}
}

// The external-sort builder must produce a byte-identical cache whether
// it spills dozens of runs or none — and identical to serializing the
// in-memory index.
func TestCorpusBuilderMatchesInMemory(t *testing.T) {
	recs, tk, d := corpusFixture(4000, 80, 23)
	inv := BuildCompressedInvertedIDs(recs, tk, d)
	dir := t.TempDir()

	memPath := filepath.Join(dir, "mem.scorp")
	if err := WriteCorpus(memPath, d, inv); err != nil {
		t.Fatalf("WriteCorpus: %v", err)
	}
	want, err := os.ReadFile(memPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, budget := range []int{0, 1024} { // 0 = default (no spills here)
		b := NewCorpusBuilder(IngestConfig{TmpDir: dir, MaxBufferedPostings: budget})
		for _, r := range recs {
			if err := b.AddRecord(r.ID, r.Tokens(tk)); err != nil {
				t.Fatalf("AddRecord: %v", err)
			}
		}
		if budget > 0 && b.Spills() == 0 {
			t.Fatalf("budget %d produced no spill runs (fixture too small?)", budget)
		}
		p := filepath.Join(dir, fmt.Sprintf("ext%d.scorp", budget))
		if err := b.Finalize(p); err != nil {
			t.Fatalf("Finalize(budget=%d): %v", budget, err)
		}
		got, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("budget %d: cache differs from in-memory serialization (%d vs %d bytes)",
				budget, len(got), len(want))
		}
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*.spill")); len(left) != 0 {
		t.Fatalf("spill runs not cleaned up: %v", left)
	}
}

func TestCorpusFileRejectsCorruption(t *testing.T) {
	recs, tk, d := corpusFixture(800, 30, 7)
	inv := BuildCompressedInvertedIDs(recs, tk, d)
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.scorp")
	if err := WriteCorpus(path, d, inv); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	reopen := func(name string, mutate func([]byte) []byte) error {
		b := mutate(append([]byte(nil), orig...))
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		cf, err := OpenCorpus(p)
		if err == nil {
			cf.Close()
		}
		return err
	}

	if err := reopen("magic", func(b []byte) []byte { b[0] ^= 0xff; return b }); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := reopen("trunc", func(b []byte) []byte { return b[:len(b)-5] }); err == nil {
		t.Fatal("truncated file accepted")
	}
	if err := reopen("data", func(b []byte) []byte { b[corpusHeaderSize+200] ^= 0x10; return b }); err == nil {
		t.Fatal("flipped data byte accepted")
	}
	if err := reopen("tail", func(b []byte) []byte { b[len(b)-3] ^= 0x01; return b }); err == nil {
		t.Fatal("flipped meta byte accepted")
	}
}

// Block-boundary coverage: posting lists exactly at blockSize−1 / blockSize
// / blockSize+1, empty and single-element lists, and an intersection whose
// rare list straddles a block seam.
func TestCompressedBlockBoundaries(t *testing.T) {
	// Dictionary includes "ee" with no postings at all.
	d := tokenize.BuildDict([]string{"aa", "bb", "cc", "dd", "ee", "ff", "gg"})
	tok := map[string][]uint32{}
	for i := uint32(0); i < PostingBlockSize-1; i++ {
		tok["aa"] = append(tok["aa"], i)
	}
	for i := uint32(0); i < PostingBlockSize; i++ {
		tok["bb"] = append(tok["bb"], i)
	}
	for i := uint32(0); i < PostingBlockSize+1; i++ {
		tok["cc"] = append(tok["cc"], i)
	}
	tok["dd"] = []uint32{5}
	// ff: every even record up to 400 (4 blocks); gg: a narrow window that
	// straddles ff's first block seam when intersected.
	for i := uint32(0); i < 400; i += 2 {
		tok["ff"] = append(tok["ff"], i)
	}
	for i := uint32(PostingBlockSize*2 - 20); i < PostingBlockSize*2+20; i++ {
		tok["gg"] = append(tok["gg"], i)
	}

	// Materialize records carrying exactly those tokens.
	n := 0
	for _, ids := range tok {
		for _, r := range ids {
			if int(r) >= n {
				n = int(r) + 1
			}
		}
	}
	docs := make([]string, n)
	for w, ids := range tok {
		for _, r := range ids {
			docs[r] += w + " "
		}
	}
	tk := tokenize.New()
	recs := make([]*relational.Record, n)
	for i := range recs {
		recs[i] = &relational.Record{ID: i, Values: []string{docs[i]}}
	}
	inv := BuildCompressedInvertedIDs(recs, tk, d)

	id := func(w string) uint32 {
		v, ok := d.ID(w)
		if !ok {
			t.Fatalf("missing dict word %s", w)
		}
		return v
	}
	for w, want := range tok {
		if got := inv.DocFreq(id(w)); got != len(want) {
			t.Fatalf("DocFreq(%s) = %d, want %d", w, got, len(want))
		}
		if got := inv.Lookup([]uint32{id(w)}); !reflect.DeepEqual(got, want) {
			t.Fatalf("Lookup(%s) mismatch: %d ids vs %d", w, len(got), len(want))
		}
	}
	if got := inv.Lookup([]uint32{id("ee")}); len(got) != 0 {
		t.Fatalf("empty posting list returned %v", got)
	}
	if got := inv.Count([]uint32{id("ee"), id("aa")}); got != 0 {
		t.Fatalf("intersection with empty list = %d", got)
	}
	if got := inv.Lookup([]uint32{id("cc"), id("dd")}); !reflect.DeepEqual(got, []uint32{5}) {
		t.Fatalf("cc∧dd = %v, want [5]", got)
	}
	if got := inv.Lookup([]uint32{id("aa"), id("bb"), id("cc")}); len(got) != PostingBlockSize-1 {
		t.Fatalf("aa∧bb∧cc = %d ids, want %d", len(got), PostingBlockSize-1)
	}
	var want []uint32
	for i := uint32(PostingBlockSize*2 - 20); i < PostingBlockSize*2+20; i += 2 {
		want = append(want, i)
	}
	if got := inv.Lookup([]uint32{id("ff"), id("gg")}); !reflect.DeepEqual(got, want) {
		t.Fatalf("seam intersection = %v, want %v", got, want)
	}
	if got := inv.Count([]uint32{id("ff"), id("gg")}); got != len(want) {
		t.Fatalf("seam Count = %d, want %d", got, len(want))
	}
}

// FuzzPostingBlockRoundTrip: decode(encode(x)) == x for arbitrary sorted
// ID sets, and a one-byte corruption anywhere in the payload is either
// detected or harmless — a corrupt block may never silently decode to a
// different (e.g. truncated) posting list.
func FuzzPostingBlockRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint16(0))
	f.Add([]byte{0, 0, 1, 255, 254, 253, 7}, uint16(3))
	f.Add(bytes.Repeat([]byte{9, 8, 7, 6, 5}, 60), uint16(100))
	f.Fuzz(func(t *testing.T, raw []byte, flip uint16) {
		ids := sortedUniqueU32(raw)
		if len(ids) == 0 {
			return
		}
		data, skips := appendPostingBlocks(nil, nil, ids)
		var got, buf []uint32
		for _, sk := range skips {
			var err error
			buf, err = decodePostingBlock(buf, data, sk)
			if err != nil {
				t.Fatalf("clean decode failed: %v", err)
			}
			got = append(got, buf...)
		}
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("round trip: %v -> %v", ids, got)
		}
		if len(data) == 0 {
			return
		}
		pos := int(flip) % len(data)
		data[pos] ^= 1 << (flip % 8)
		var corrupted []uint32
		failed := false
		for _, sk := range skips {
			b, err := decodePostingBlock(nil, data, sk)
			if err != nil {
				failed = true
				break
			}
			corrupted = append(corrupted, b...)
		}
		if !failed && !reflect.DeepEqual(corrupted, ids) {
			t.Fatalf("corruption at byte %d decoded silently to different ids:\n  %v\nvs %v",
				pos, corrupted, ids)
		}
	})
}
