package index

// External-sort corpus ingestion: the bounded-memory path from a record
// stream to a corpus cache. One pass over the records tokenizes and
// interns into a provisional (first-seen-order) dictionary while packing
// (provisional token, record) postings into a fixed-capacity buffer;
// full buffers are sorted and spilled as runs. Finalize then
//
//  1. freezes the vocabulary, sorts it, and builds the permutation from
//     provisional to final (lexicographic) token IDs — the same ID order
//     BuildDict and querypool.Generate produce, so a cache built here is
//     bit-compatible with the in-memory index;
//  2. rewrites each spilled run with final IDs, re-sorted — every run fit
//     the posting buffer when it was spilled, so this reload stays inside
//     the same memory budget;
//  3. k-way-merges the runs straight into a CorpusWriter, which emits
//     each 128-ID block as it fills.
//
// Peak memory is therefore O(buffer + vocabulary + skip entries),
// independent of the number of postings.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"slices"
	"sort"

	"smartcrawl/internal/tokenize"
)

// DefaultMaxBufferedPostings bounds the in-memory posting buffer at
// 2^21 packed pairs — 16 MiB — when IngestConfig leaves it zero.
const DefaultMaxBufferedPostings = 1 << 21

// IngestConfig parameterizes a CorpusBuilder.
type IngestConfig struct {
	// TmpDir receives the spill runs; empty uses os.TempDir().
	TmpDir string
	// MaxBufferedPostings caps the in-memory (token,record) buffer; a
	// full buffer is sorted and spilled. Zero means
	// DefaultMaxBufferedPostings.
	MaxBufferedPostings int
}

// CorpusBuilder accumulates a corpus one record at a time and writes a
// corpus cache without ever materializing the full inverted index.
type CorpusBuilder struct {
	cfg     IngestConfig
	dict    *tokenize.Dict // provisional first-seen-order IDs
	pairs   []uint64       // provID<<32 | recordID
	runs    []string
	records int
	lastID  int64
	spilled uint64
	failed  error
}

// NewCorpusBuilder returns a builder with the given spill configuration.
func NewCorpusBuilder(cfg IngestConfig) *CorpusBuilder {
	if cfg.MaxBufferedPostings <= 0 {
		cfg.MaxBufferedPostings = DefaultMaxBufferedPostings
	}
	// A spill run must survive a full reload at Finalize, so the cap also
	// bounds that reload; keep a sane floor for pathological configs.
	if cfg.MaxBufferedPostings < 1024 {
		cfg.MaxBufferedPostings = 1024
	}
	return &CorpusBuilder{
		cfg:    cfg,
		dict:   tokenize.NewDict(),
		lastID: -1,
	}
}

// AddRecord ingests one record's token list (duplicates allowed; they
// collapse in the merge). Record IDs must arrive strictly ascending —
// they become the posting payloads and the index requires density in
// spirit and order in fact.
func (b *CorpusBuilder) AddRecord(id int, tokens []string) error {
	if b.failed != nil {
		return b.failed
	}
	if int64(id) <= b.lastID {
		return fmt.Errorf("index: ingest record IDs must ascend (%d after %d)", id, b.lastID)
	}
	if id > maxRecordID {
		return fmt.Errorf("index: record ID %d exceeds uint32", id)
	}
	b.lastID = int64(id)
	b.records++
	for _, w := range tokens {
		prov := b.dict.Intern(w)
		b.pairs = append(b.pairs, uint64(prov)<<32|uint64(uint32(id)))
		if len(b.pairs) >= b.cfg.MaxBufferedPostings {
			if err := b.spill(); err != nil {
				b.failed = err
				return err
			}
		}
	}
	return nil
}

// Records returns the number of records ingested so far.
func (b *CorpusBuilder) Records() int { return b.records }

// Vocab returns the provisional vocabulary size so far.
func (b *CorpusBuilder) Vocab() int { return b.dict.Len() }

// Spills returns how many runs have been written to disk — the
// observable knob for ingestion tests and the scale experiment.
func (b *CorpusBuilder) Spills() int { return len(b.runs) }

func (b *CorpusBuilder) spill() error {
	if len(b.pairs) == 0 {
		return nil
	}
	slices.Sort(b.pairs)
	dir := b.cfg.TmpDir
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "smartcrawl-run-*.spill")
	if err != nil {
		return err
	}
	if err := writeRun(f, b.pairs); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	b.runs = append(b.runs, f.Name())
	b.spilled += uint64(len(b.pairs))
	b.pairs = b.pairs[:0]
	return nil
}

func writeRun(w io.Writer, pairs []uint64) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var buf [8]byte
	for _, p := range pairs {
		binary.LittleEndian.PutUint64(buf[:], p)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func readRun(path string, into []uint64) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	into = into[:0]
	var buf [8]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if err == io.EOF {
				return into, nil
			}
			return nil, err
		}
		into = append(into, binary.LittleEndian.Uint64(buf[:]))
	}
}

// Finalize freezes the vocabulary, rewrites the spilled runs under final
// token IDs, merges everything into a corpus cache at path, and removes
// the temporaries. The builder is unusable afterwards.
func (b *CorpusBuilder) Finalize(path string) (err error) {
	if b.failed != nil {
		return b.failed
	}
	defer func() {
		for _, r := range b.runs {
			os.Remove(r)
		}
		b.failed = fmt.Errorf("index: Finalize already ran")
	}()

	// Final IDs are positions in the sorted vocabulary — identical to
	// BuildDict over the same corpus, which is what keeps cache-built and
	// in-memory-built indexes byte-compatible.
	b.dict.Freeze()
	prov := make([]string, b.dict.Len())
	for i := range prov {
		prov[i] = b.dict.Word(uint32(i))
	}
	sorted := append([]string(nil), prov...)
	sort.Strings(sorted)
	final := tokenize.BuildDict(sorted)
	perm := make([]uint32, len(prov))
	for provID, w := range prov {
		id, _ := final.ID(w)
		perm[provID] = id
	}

	remap := func(pairs []uint64) {
		for i, p := range pairs {
			pairs[i] = uint64(perm[p>>32])<<32 | (p & 0xffffffff)
		}
		slices.Sort(pairs)
	}

	remap(b.pairs)
	scratch := make([]uint64, 0, b.cfg.MaxBufferedPostings)
	for _, run := range b.runs {
		scratch, err = readRun(run, scratch)
		if err != nil {
			return err
		}
		remap(scratch)
		f, err := os.Create(run) // rewrite in place
		if err != nil {
			return err
		}
		if err := writeRun(f, scratch); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	cw, err := NewCorpusWriter(path, final, b.records)
	if err != nil {
		return err
	}
	if err := b.merge(cw); err != nil {
		cw.fail(err)
		return err
	}
	return cw.Finish()
}

// pairSource yields ascending packed pairs from one run (or the resident
// buffer).
type pairSource struct {
	mem []uint64
	br  *bufio.Reader
	f   *os.File
	cur uint64
	ok  bool
}

func (s *pairSource) next() {
	if s.br != nil {
		var buf [8]byte
		if _, err := io.ReadFull(s.br, buf[:]); err != nil {
			s.ok = false
			return
		}
		s.cur = binary.LittleEndian.Uint64(buf[:])
		return
	}
	if len(s.mem) == 0 {
		s.ok = false
		return
	}
	s.cur = s.mem[0]
	s.mem = s.mem[1:]
}

func (b *CorpusBuilder) merge(cw *CorpusWriter) error {
	srcs := make([]*pairSource, 0, len(b.runs)+1)
	defer func() {
		for _, s := range srcs {
			if s.f != nil {
				s.f.Close()
			}
		}
	}()
	if len(b.pairs) > 0 {
		srcs = append(srcs, &pairSource{mem: b.pairs, ok: true})
	}
	for _, run := range b.runs {
		f, err := os.Open(run)
		if err != nil {
			return err
		}
		srcs = append(srcs, &pairSource{f: f, br: bufio.NewReaderSize(f, 1<<20), ok: true})
	}
	// Prime and heapify on cur; the heap pops the globally smallest pair,
	// which is exactly the (token, record) order CorpusWriter.Add wants.
	heap := make([]*pairSource, 0, len(srcs))
	for _, s := range srcs {
		s.next()
		if s.ok {
			heap = append(heap, s)
			up(heap, len(heap)-1)
		}
	}
	for len(heap) > 0 {
		s := heap[0]
		if err := cw.Add(uint32(s.cur>>32), uint32(s.cur)); err != nil {
			return err
		}
		s.next()
		if !s.ok {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		if len(heap) > 0 {
			down(heap, 0)
		}
	}
	return nil
}

func up(h []*pairSource, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].cur <= h[i].cur {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func down(h []*pairSource, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h[l].cur < h[m].cur {
			m = l
		}
		if r < len(h) && h[r].cur < h[m].cur {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
