package index

// The block posting codec behind the out-of-core corpus path: a posting
// list is split into blocks of at most PostingBlockSize ascending record
// IDs, each stored as a varint d-gap payload plus a fixed-size skip entry
// {first, last, offset, count, bytes}. The skip entries stay in memory
// (≈16 bytes per 128 postings) while the payloads live in one shared
// byte buffer — a heap slice for the in-memory index, a memory-mapped
// file region for the on-disk one — so the rarest-first merge/gallop
// intersection kernels can skip whole blocks (sk.last < candidate)
// without ever decoding them.
//
// Decoding validates the block structurally: exact payload length, exact
// ID count, strictly ascending IDs, and a final ID matching the skip
// entry. Any byte-level truncation or splice inside a block therefore
// fails loudly instead of silently shortening a posting list.

import (
	"encoding/binary"
	"fmt"
)

// PostingBlockSize is the maximum number of record IDs per posting block.
// 128 keeps a decoded block in two cache lines' worth of uint32s and the
// skip-table overhead at ~1/32 of the payload.
const PostingBlockSize = 128

// blockSkip is the in-memory skip entry of one posting block.
type blockSkip struct {
	first uint32 // the block's first record ID (not in the payload)
	last  uint32 // the block's final record ID (validated on decode)
	off   uint32 // payload byte offset into the shared data buffer
	n     uint16 // record IDs in the block, 1..PostingBlockSize
	blen  uint16 // payload length in bytes
}

// blockSkipBytes is the on-disk encoding width of one skip entry.
const blockSkipBytes = 16

// appendPostingBlocks encodes the sorted, duplicate-free posting list ids
// as d-gap blocks appended to data, with one skip entry per block appended
// to skips. The first ID of each block lives only in its skip entry; the
// payload holds the n-1 gaps that follow. Panics on unsorted or duplicate
// input — builder-side misuse, not data corruption.
func appendPostingBlocks(data []byte, skips []blockSkip, ids []uint32) ([]byte, []blockSkip) {
	var buf [binary.MaxVarintLen32]byte
	for len(ids) > 0 {
		n := len(ids)
		if n > PostingBlockSize {
			n = PostingBlockSize
		}
		blk := ids[:n]
		ids = ids[n:]
		off := len(data)
		prev := blk[0]
		for _, id := range blk[1:] {
			if id <= prev {
				panic(fmt.Sprintf("index: posting list not strictly ascending (%d after %d)", id, prev))
			}
			w := binary.PutUvarint(buf[:], uint64(id-prev))
			data = append(data, buf[:w]...)
			prev = id
		}
		skips = append(skips, blockSkip{
			first: blk[0],
			last:  blk[n-1],
			off:   uint32(off),
			n:     uint16(n),
			blen:  uint16(len(data) - off),
		})
	}
	return data, skips
}

// decodePostingBlock decodes the block described by sk from the shared
// buffer into dst (reused when capacity allows) and returns the decoded
// IDs. Corruption — a payload that is truncated, over-long, non-ascending,
// or ends on the wrong ID — returns a descriptive error and never a
// partial list.
func decodePostingBlock(dst []uint32, data []byte, sk blockSkip) ([]uint32, error) {
	if sk.n == 0 {
		return nil, fmt.Errorf("index: corrupt posting block: zero-length block")
	}
	end := int(sk.off) + int(sk.blen)
	if int(sk.off) > len(data) || end > len(data) {
		return nil, fmt.Errorf("index: corrupt posting block: payload [%d:%d) outside %d-byte buffer",
			sk.off, end, len(data))
	}
	payload := data[sk.off:end]
	dst = append(dst[:0], sk.first)
	cur := uint64(sk.first)
	for len(dst) < int(sk.n) {
		gap, w := binary.Uvarint(payload)
		if w <= 0 {
			return nil, fmt.Errorf("index: corrupt posting block: truncated varint at id %d/%d", len(dst), sk.n)
		}
		payload = payload[w:]
		if gap == 0 {
			return nil, fmt.Errorf("index: corrupt posting block: zero gap at id %d/%d", len(dst), sk.n)
		}
		cur += gap
		if cur > maxRecordID {
			return nil, fmt.Errorf("index: corrupt posting block: id overflow (%d)", cur)
		}
		dst = append(dst, uint32(cur))
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("index: corrupt posting block: %d trailing payload bytes", len(payload))
	}
	if dst[len(dst)-1] != sk.last {
		return nil, fmt.Errorf("index: corrupt posting block: final id %d, skip entry says %d",
			dst[len(dst)-1], sk.last)
	}
	return dst, nil
}

// maxRecordID bounds decoded record IDs; gaps that push past it indicate a
// corrupt payload rather than a real corpus (record IDs are dense).
const maxRecordID = 1<<32 - 1

// mustDecodePostingBlock is decodePostingBlock for the lookup hot path:
// the file's checksums were verified at open and the in-memory builder
// cannot produce corrupt blocks, so a decode failure here means the
// buffer changed underneath us — fail loudly.
func mustDecodePostingBlock(dst []uint32, data []byte, sk blockSkip) []uint32 {
	out, err := decodePostingBlock(dst, data, sk)
	if err != nil {
		panic(err)
	}
	return out
}
