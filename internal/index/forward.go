package index

// Forward is the forward index of Figure 3(b): it maps each local record ID
// to the IDs of the pool queries the record satisfies (its forward list
// F(d)). When a record is covered and removed from D, the forward list
// identifies exactly the queries whose |q(D)| must be decremented — the
// input to the delta-update mechanism.
type Forward struct {
	lists map[int][]int
}

// NewForward returns an empty forward index.
func NewForward() *Forward { return &Forward{lists: make(map[int][]int)} }

// Add records that query qid is satisfied by record rid.
func (f *Forward) Add(rid, qid int) {
	f.lists[rid] = append(f.lists[rid], qid)
}

// List returns F(rid), the query IDs satisfied by record rid (shared slice;
// callers must not mutate). Missing records yield nil.
func (f *Forward) List(rid int) []int { return f.lists[rid] }

// Remove deletes the forward list of rid and returns it; the record is
// leaving D and its list will not be consulted again.
func (f *Forward) Remove(rid int) []int {
	l := f.lists[rid]
	delete(f.lists, rid)
	return l
}

// Len returns the number of records with non-empty forward lists.
func (f *Forward) Len() int { return len(f.lists) }

// TotalEntries returns the sum of forward-list lengths — the Σ|F(d)| term
// in the Appendix B complexity analysis.
func (f *Forward) TotalEntries() int {
	n := 0
	for _, l := range f.lists {
		n += len(l)
	}
	return n
}
