//go:build !linux

package index

import (
	"io"
	"os"
)

// mmapFile on platforms without a wired mmap syscall reads the whole file
// into heap memory; the corpus still works, just without the fixed-RSS
// property. The third return reports that no real mapping was made.
func mmapFile(f *os.File, size int) ([]byte, func() error, bool, error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, nil, false, err
	}
	return b, func() error { return nil }, false, nil
}
