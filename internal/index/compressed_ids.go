package index

import (
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// CompressedInvertedIDs is CompressedInverted on the interned-token
// kernel, restructured for the out-of-core corpus path: every posting
// payload lives in ONE shared d-gap block buffer (see block.go) indexed
// by per-token skip-entry ranges, so the whole index is three flat arrays
// plus one byte slice. The same structure backs both the heap-allocated
// build and the memory-mapped corpus file — OpenCorpus points data at the
// mapped region and the lookup kernels below run unchanged over it.
//
// Lookups are conjunctive merge/gallop intersections that consult the
// skip entries first: a block whose last ID is below the current
// candidate is skipped without being decoded.
type CompressedInvertedIDs struct {
	skipIdx []uint32    // token ID → first skip entry; len = vocab+1 (sentinel)
	counts  []uint32    // token ID → |I(w)|
	skips   []blockSkip // all tokens' skip entries, token-major
	data    []byte      // shared block payload buffer (heap or mmap)
	size    int
}

// BuildCompressedInvertedIDs indexes the records' tokens under dictionary
// d with block d-gap storage. Tokens outside the dictionary are not
// indexed (they cannot appear in a pool query).
func BuildCompressedInvertedIDs(recs []*relational.Record, tk *tokenize.Tokenizer, d *tokenize.Dict) *CompressedInvertedIDs {
	// Gather plain lists first (IDs may arrive unsorted).
	tmp := make([][]uint32, d.Len())
	for _, r := range recs {
		for _, w := range r.Tokens(tk) {
			if id, ok := d.ID(w); ok {
				tmp[id] = append(tmp[id], uint32(r.ID))
			}
		}
	}
	sortPostingsU32(tmp)
	inv := &CompressedInvertedIDs{
		skipIdx: make([]uint32, d.Len()+1),
		counts:  make([]uint32, d.Len()),
		size:    len(recs),
	}
	for id, ids := range tmp {
		inv.skipIdx[id] = uint32(len(inv.skips))
		inv.counts[id] = uint32(len(ids))
		inv.data, inv.skips = appendPostingBlocks(inv.data, inv.skips, ids)
	}
	inv.skipIdx[d.Len()] = uint32(len(inv.skips))
	return inv
}

// Size returns the number of indexed records.
func (inv *CompressedInvertedIDs) Size() int { return inv.size }

// DocFreq returns |I(w)| for token ID id without decompressing.
func (inv *CompressedInvertedIDs) DocFreq(id uint32) int {
	if int(id) >= len(inv.counts) {
		return 0
	}
	return int(inv.counts[id])
}

// Bytes returns the total posting storage — payload plus skip entries —
// for the space-efficiency bench.
func (inv *CompressedInvertedIDs) Bytes() int {
	return len(inv.data) + blockSkipBytes*len(inv.skips)
}

// compCursor walks one token's posting blocks monotonically forward,
// decoding lazily: seeking to a candidate first advances over whole
// blocks via the skip entries and decodes only the block that can contain
// it. Candidates must be probed in ascending order (the intersection
// kernels guarantee that), so the cursor never rewinds.
type compCursor struct {
	inv    *CompressedInvertedIDs
	sk     int // current skip entry
	skEnd  int // one past the token's final skip entry
	loaded int // decoded skip entry, or -1
	buf    []uint32
	count  int // |I(w)|, for the rarest-first sort
}

// init points the cursor at token id's posting blocks and reports whether
// the token has any postings.
func (c *compCursor) init(inv *CompressedInvertedIDs, id uint32) bool {
	if int(id) >= len(inv.counts) || inv.counts[id] == 0 {
		return false
	}
	c.inv = inv
	c.sk = int(inv.skipIdx[id])
	c.skEnd = int(inv.skipIdx[id+1])
	c.loaded = -1
	c.count = int(inv.counts[id])
	return true
}

// contains reports whether the list holds v, advancing the cursor past
// every block that ends below v. Returns done=true once the list is
// exhausted below v — the whole intersection can stop then.
func (c *compCursor) contains(v uint32) (found, done bool) {
	for c.sk < c.skEnd && c.inv.skips[c.sk].last < v {
		c.sk++
	}
	if c.sk == c.skEnd {
		return false, true
	}
	sk := c.inv.skips[c.sk]
	if sk.first > v {
		return false, false
	}
	if sk.first == v || sk.last == v {
		return true, false
	}
	if c.loaded != c.sk {
		c.buf = mustDecodePostingBlock(c.buf, c.inv.data, sk)
		c.loaded = c.sk
	}
	return containsU32(c.buf, v), false
}

// Lookup returns the sorted record IDs satisfying the conjunctive token-ID
// query q, identical in contract to InvertedIDs.Lookup.
func (inv *CompressedInvertedIDs) Lookup(q []uint32) []uint32 {
	return inv.LookupInto(q, nil)
}

// LookupInto is Lookup with a caller-supplied scratch buffer, mirroring
// InvertedIDs.LookupInto: the result is built in scratch's backing array
// when capacity allows. The returned slice aliases scratch; callers that
// retain it must copy. Safe for concurrent use (cursor state is per call).
func (inv *CompressedInvertedIDs) LookupInto(q []uint32, scratch []uint32) []uint32 {
	return inv.intersect(q, scratch[:0], false)
}

// Count returns |q(D)| for the token-ID query q without materializing the
// intersection.
func (inv *CompressedInvertedIDs) Count(q []uint32) int {
	if len(q) == 1 {
		return inv.DocFreq(q[0])
	}
	return len(inv.intersect(q, nil, true))
}

// intersect drives the conjunctive merge: iterate the rarest list block
// by block and probe every candidate against the other lists' cursors,
// skipping undecoded blocks via the skip entries. countOnly reuses one
// scratch element so Count allocates no output.
func (inv *CompressedInvertedIDs) intersect(q []uint32, dst []uint32, countOnly bool) []uint32 {
	if len(q) == 0 {
		return nil
	}
	var curs [8]compCursor
	lists := curs[:0]
	if len(q) > len(curs) {
		lists = make([]compCursor, 0, len(q))
	}
	for _, id := range q {
		var c compCursor
		if !c.init(inv, id) {
			return nil
		}
		lists = append(lists, c)
	}
	// Rarest first (insertion sort: q is tiny): the intersection can never
	// exceed the smallest list, and probing descends from it.
	for i := 1; i < len(lists); i++ {
		for j := i; j > 0 && lists[j].count < lists[j-1].count; j-- {
			lists[j], lists[j-1] = lists[j-1], lists[j]
		}
	}
	rare := &lists[0]
	others := lists[1:]
	var blk []uint32
outer:
	for sk := rare.sk; sk < rare.skEnd; sk++ {
		blk = mustDecodePostingBlock(blk, inv.data, inv.skips[sk])
		for _, v := range blk {
			matched := true
			for i := range others {
				found, done := others[i].contains(v)
				if done {
					break outer
				}
				if !found {
					matched = false
					break
				}
			}
			if matched {
				if countOnly && len(dst) > 0 {
					dst[0] = v
					dst = append(dst, 0)[:len(dst)+1] // count via length, no per-id alloc
				} else {
					dst = append(dst, v)
				}
			}
		}
	}
	return dst
}
