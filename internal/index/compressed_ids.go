package index

import (
	"encoding/binary"

	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// CompressedInvertedIDs is CompressedInverted on the interned-token
// kernel: posting lists are d-gap varint streams held in a dense slice
// keyed by tokenize.Dict token ID, so a lookup costs one array index
// instead of a string hash before the lazy decompression starts. Same
// space behavior as the string variant — the storage is the gap stream
// either way — with the map's per-entry overhead gone.
type CompressedInvertedIDs struct {
	postings []compressedList // token ID → gap-encoded record IDs
	size     int
}

// BuildCompressedInvertedIDs indexes the records' tokens under dictionary
// d with d-gap varint storage. Tokens outside the dictionary are not
// indexed (they cannot appear in a pool query).
func BuildCompressedInvertedIDs(recs []*relational.Record, tk *tokenize.Tokenizer, d *tokenize.Dict) *CompressedInvertedIDs {
	// Gather plain lists first (IDs may arrive unsorted).
	tmp := make([][]uint32, d.Len())
	for _, r := range recs {
		for _, w := range r.Tokens(tk) {
			if id, ok := d.ID(w); ok {
				tmp[id] = append(tmp[id], uint32(r.ID))
			}
		}
	}
	sortPostingsU32(tmp)
	inv := &CompressedInvertedIDs{
		postings: make([]compressedList, d.Len()),
		size:     len(recs),
	}
	var buf [binary.MaxVarintLen64]byte
	for id, ids := range tmp {
		if len(ids) == 0 {
			continue
		}
		data := make([]byte, 0, len(ids)) // gaps are usually 1 byte
		prev := uint32(0)
		for i, rid := range ids {
			gap := rid - prev
			if i == 0 {
				gap = rid
			}
			n := binary.PutUvarint(buf[:], uint64(gap))
			data = append(data, buf[:n]...)
			prev = rid
		}
		inv.postings[id] = compressedList{data: data, count: len(ids)}
	}
	return inv
}

// Size returns the number of indexed records.
func (inv *CompressedInvertedIDs) Size() int { return inv.size }

// DocFreq returns |I(w)| for token ID id without decompressing.
func (inv *CompressedInvertedIDs) DocFreq(id uint32) int {
	if int(id) >= len(inv.postings) {
		return 0
	}
	return inv.postings[id].count
}

// Bytes returns the total compressed posting storage, for the
// space-efficiency bench.
func (inv *CompressedInvertedIDs) Bytes() int {
	n := 0
	for _, l := range inv.postings {
		n += len(l.data)
	}
	return n
}

// Lookup returns the sorted record IDs satisfying the conjunctive token-ID
// query q, identical in contract to InvertedIDs.Lookup. Lists decompress
// lazily during the k-way merge, exactly like the string variant.
func (inv *CompressedInvertedIDs) Lookup(q []uint32) []uint32 {
	if len(q) == 0 {
		return nil
	}
	lists := make([]compressedList, len(q))
	for i, id := range q {
		if int(id) >= len(inv.postings) {
			return nil
		}
		l := inv.postings[id]
		if l.count == 0 {
			return nil
		}
		lists[i] = l
	}
	// Rarest first, as in the plain index (insertion sort: q is tiny).
	for i := 1; i < len(lists); i++ {
		for j := i; j > 0 && lists[j].count < lists[j-1].count; j-- {
			lists[j], lists[j-1] = lists[j-1], lists[j]
		}
	}

	its := make([]*listIterator, len(lists))
	for i, l := range lists {
		its[i] = l.iterator()
	}
	var out []uint32
	// k-way conjunctive merge: advance the lagging iterators toward the
	// current candidate from the rarest list.
	for !its[0].done {
		candidate := its[0].cur
		matched := true
		for _, it := range its[1:] {
			for !it.done && it.cur < candidate {
				it.next()
			}
			if it.done {
				return out
			}
			if it.cur != candidate {
				matched = false
				break
			}
		}
		if matched {
			out = append(out, uint32(candidate))
		}
		its[0].next()
	}
	return out
}

// Count returns |q(D)| for the token-ID query q.
func (inv *CompressedInvertedIDs) Count(q []uint32) int { return len(inv.Lookup(q)) }
