package enrich

import (
	"reflect"
	"testing"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/fixture"
	"smartcrawl/internal/match"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
)

func fixtureSmart(t *testing.T) (*crawler.Env, crawler.Crawler, *fixture.Universe) {
	t.Helper()
	u := fixture.New()
	env := &crawler.Env{
		Local:     u.Local,
		Searcher:  u.DB,
		Tokenizer: u.Tokenizer,
		Matcher:   match.NewExactOn(u.Tokenizer, nil, []int{0}),
	}
	smp := &sample.Sample{Records: u.Sample.Records, Theta: u.Theta}
	c, err := crawler.NewSmart(env, crawler.SmartConfig{
		Sample: smp, Estimator: estimator.Biased{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, c, u
}

func TestEnrichAppendsRating(t *testing.T) {
	env, c, u := fixtureSmart(t)
	report, res, err := Enrich(env.Local, u.HiddenTab.Schema, c, 5, Options{
		Columns: []int{1}, // rating
		Missing: "?",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report.NewColumns, []string{"h_rating"}) {
		t.Fatalf("NewColumns = %v", report.NewColumns)
	}
	col := env.Local.Col("h_rating")
	if col == -1 {
		t.Fatal("h_rating column missing")
	}
	// All four restaurants are coverable; budget 5 suffices.
	want := map[string]string{
		"Thai Noodle House":       "4.0",
		"Saigon Ramen":            "3.9",
		"Thai House":              "4.1",
		"Grand Noodle House Thai": "4.2",
	}
	for _, r := range env.Local.Records {
		if got := r.Value(col); got != want[r.Value(0)] {
			t.Errorf("%s enriched with %q, want %q", r.Value(0), got, want[r.Value(0)])
		}
	}
	if report.Enriched != 4 || report.Coverage != 1 {
		t.Fatalf("report = %+v", report)
	}
	if res.QueriesIssued != report.QueriesIssued {
		t.Fatal("report/result disagree on queries issued")
	}
}

func TestEnrichMissingMarker(t *testing.T) {
	env, c, u := fixtureSmart(t)
	report, _, err := Enrich(env.Local, u.HiddenTab.Schema, c, 1, Options{
		Columns: []int{1},
		Missing: "N/A",
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Enriched >= 4 {
		t.Fatalf("budget 1 should not enrich everything (%d)", report.Enriched)
	}
	col := env.Local.Col("h_rating")
	missing := 0
	for _, r := range env.Local.Records {
		if r.Value(col) == "N/A" {
			missing++
		}
	}
	if missing != 4-report.Enriched {
		t.Fatalf("missing markers %d, enriched %d", missing, report.Enriched)
	}
}

func TestEnrichViaSchemaMapping(t *testing.T) {
	env, c, u := fixtureSmart(t)
	mapping := relational.MatchSchemas(env.Local, u.HiddenTab, u.Tokenizer)
	report, _, err := Enrich(env.Local, u.HiddenTab.Schema, c, 5, Options{
		Mapping: &mapping,
	})
	if err != nil {
		t.Fatal(err)
	}
	// name maps to name; rating is unmapped → the enrichment column.
	if !reflect.DeepEqual(report.NewColumns, []string{"h_rating"}) {
		t.Fatalf("NewColumns = %v", report.NewColumns)
	}
}

func TestEnrichValidation(t *testing.T) {
	env, c, u := fixtureSmart(t)
	if _, _, err := Enrich(nil, u.HiddenTab.Schema, c, 5, Options{Columns: []int{1}}); err == nil {
		t.Error("nil local should fail")
	}
	if _, _, err := Enrich(env.Local, u.HiddenTab.Schema, nil, 5, Options{Columns: []int{1}}); err == nil {
		t.Error("nil crawler should fail")
	}
	if _, _, err := Enrich(env.Local, u.HiddenTab.Schema, c, 5, Options{}); err == nil {
		t.Error("no columns and no mapping should fail")
	}
	if _, _, err := Enrich(env.Local, u.HiddenTab.Schema, c, 5, Options{Columns: []int{99}}); err == nil {
		t.Error("out-of-range column should fail")
	}
}
