// Package enrich is the end-to-end data-enrichment layer — the "Deeper"
// system of the paper's demo [43]: given a local table, a hidden database
// behind a keyword-search interface, and a query budget, it aligns schemas,
// crawls with a chosen framework, matches crawled records to local ones,
// and appends the hidden database's extra attributes as new local columns.
package enrich

import (
	"errors"
	"fmt"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/relational"
)

// Report summarizes an enrichment run.
type Report struct {
	// Budget is the query budget requested; QueriesIssued what was spent.
	Budget        int
	QueriesIssued int
	// Enriched counts local records that received values.
	Enriched int
	// Coverage is Enriched / |D|.
	Coverage float64
	// NewColumns lists the attribute names appended to the local table.
	NewColumns []string
}

// Options configures Enrich.
type Options struct {
	// Columns are the hidden column indices to append. Nil selects every
	// hidden column not claimed by the schema mapping (the natural
	// enrichment attributes).
	Columns []int
	// Mapping aligns local to hidden columns; required when Columns is
	// nil to know which hidden columns are "new".
	Mapping *relational.SchemaMapping
	// Missing is the value written for uncovered records (default "").
	Missing string
	// Prefix is prepended to new column names to avoid collisions
	// (default "h_").
	Prefix string
}

// Enrich runs crawler c with the given budget and appends the selected
// hidden attributes to local, in place. It returns the report and the
// crawl result (for inspection of the per-query trace).
func Enrich(local *relational.Table, hiddenSchema []string, c crawler.Crawler, budget int, opts Options) (*Report, *crawler.Result, error) {
	if local == nil || local.Len() == 0 {
		return nil, nil, errors.New("enrich: empty local table")
	}
	if c == nil {
		return nil, nil, errors.New("enrich: nil crawler")
	}
	cols := opts.Columns
	if cols == nil {
		if opts.Mapping == nil {
			return nil, nil, errors.New("enrich: need Columns or Mapping to pick enrichment attributes")
		}
		cols = opts.Mapping.UnmappedHidden(len(hiddenSchema))
	}
	if len(cols) == 0 {
		return nil, nil, errors.New("enrich: no enrichment columns selected")
	}
	for _, j := range cols {
		if j < 0 || j >= len(hiddenSchema) {
			return nil, nil, fmt.Errorf("enrich: hidden column %d out of range", j)
		}
	}
	prefix := opts.Prefix
	if prefix == "" {
		prefix = "h_"
	}

	res, err := c.Run(budget)
	if err != nil {
		return nil, nil, fmt.Errorf("enrich: crawl failed: %w", err)
	}

	report := &Report{Budget: budget, QueriesIssued: res.QueriesIssued}
	newCols := make([]int, len(cols))
	for i, j := range cols {
		name := prefix + hiddenSchema[j]
		report.NewColumns = append(report.NewColumns, name)
		newCols[i] = local.AddColumn(name, opts.Missing)
	}
	for d, h := range res.Matches {
		r := local.Records[d]
		for i, j := range cols {
			r.Values[newCols[i]] = h.Value(j)
		}
		r.InvalidateTokens()
		report.Enriched++
	}
	report.Coverage = float64(report.Enriched) / float64(local.Len())
	return report, res, nil
}
