package deepweb_test

import (
	"testing"

	"smartcrawl/internal/deepweb"
)

// FuzzParseFaultProfile ensures arbitrary -faults specs never panic the
// parser, and that every accepted profile is sane: probabilities sum to
// at most 1 and a reparse of the canonical presets stays stable.
func FuzzParseFaultProfile(f *testing.F) {
	for _, name := range deepweb.FaultPresetNames() {
		f.Add(name)
	}
	f.Add("timeout=0.05,truncate=0.1,truncate-frac=0.3,attempts=3")
	f.Add("unavailable=0.2,ratelimit=0.01,burst=5,stale=0.02,stale-frac=0.9")
	f.Add("rate-limit=0.3")
	f.Add("timeout=2") // sums past 1: must error, not wrap
	f.Add("timeout=NaN")
	f.Add("timeout")
	f.Add("=0.5")
	f.Add("attempts=-1,burst=0")
	f.Add(" TRANSIENT10 ")
	f.Add("timeout=1e-9,,unavailable=0.0,")
	f.Add("timeout=0.05,bogus=1")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := deepweb.ParseFaultProfile(spec)
		if err != nil {
			return
		}
		if tot := p.Total(); !(tot <= 1) { // NaN fails this too
			t.Fatalf("ParseFaultProfile(%q) accepted total fault rate %v", spec, tot)
		}
		if tr := p.TransientRate(); !(tr >= 0 && tr <= 1) {
			t.Fatalf("ParseFaultProfile(%q) accepted transient rate %v", spec, tr)
		}
	})
}
