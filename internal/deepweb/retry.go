package deepweb

import (
	"errors"
	"fmt"
	"time"

	"smartcrawl/internal/relational"
)

// Retrying wraps a Searcher and re-issues queries that fail transiently —
// network blips, HTTP 5xx, rate-limit waits. Real crawls run for hours
// against flaky web APIs; a single dropped request must not abort a
// budgeted crawl. Budget accounting composes naturally: wrap the Counting
// layer *outside* Retrying to charge once per logical query, or inside it
// to charge per attempt (what quota meters actually do).
type Retrying struct {
	S Searcher
	// Retries is the number of re-attempts after the first failure.
	Retries int
	// IsTransient classifies errors worth retrying; nil retries
	// everything except ErrBudgetExhausted.
	IsTransient func(error) bool
	// Backoff returns the wait before re-attempt i (1-based); nil means
	// no wait.
	Backoff func(attempt int) time.Duration
	// Sleep is the clock used between attempts; nil means time.Sleep
	// (tests inject a fake).
	Sleep func(time.Duration)

	// RetriedCalls counts Search calls that needed at least one retry;
	// TotalRetries counts individual re-attempts.
	RetriedCalls int
	TotalRetries int
}

// Search implements Searcher.
func (r *Retrying) Search(q Query) ([]*relational.Record, error) {
	transient := r.IsTransient
	if transient == nil {
		transient = func(err error) bool { return !errors.Is(err, ErrBudgetExhausted) }
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var lastErr error
	for attempt := 0; attempt <= r.Retries; attempt++ {
		if attempt > 0 {
			r.TotalRetries++
			if attempt == 1 {
				r.RetriedCalls++
			}
			if r.Backoff != nil {
				sleep(r.Backoff(attempt))
			}
		}
		recs, err := r.S.Search(q)
		if err == nil {
			return recs, nil
		}
		lastErr = err
		if !transient(err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("deepweb: %d attempts failed: %w", r.Retries+1, lastErr)
}

// K implements Searcher.
func (r *Retrying) K() int { return r.S.K() }

// ExponentialBackoff returns a Backoff function starting at base and
// doubling each attempt, capped at max.
func ExponentialBackoff(base, max time.Duration) func(int) time.Duration {
	return func(attempt int) time.Duration {
		d := base
		for i := 1; i < attempt; i++ {
			d *= 2
			if d >= max {
				return max
			}
		}
		if d > max {
			return max
		}
		return d
	}
}
