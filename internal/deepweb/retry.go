package deepweb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
)

// Retrying wraps a Searcher and re-issues queries that fail transiently —
// network blips, HTTP 5xx, rate-limit waits. Real crawls run for hours
// against flaky web APIs; a single dropped request must not abort a
// budgeted crawl. Budget accounting composes naturally: wrap the Counting
// layer *outside* Retrying to charge once per logical query, or inside it
// to charge per attempt (what quota meters actually do).
type Retrying struct {
	S Searcher
	// Retries is the number of re-attempts after the first failure.
	Retries int
	// IsTransient classifies errors worth retrying; nil retries
	// everything except ErrBudgetExhausted and ErrTruncated (a truncated
	// result already returned its records — re-issuing would discard
	// them for a page that will truncate identically).
	IsTransient func(error) bool
	// Backoff returns the wait before re-attempt i (1-based); nil means
	// no wait. A server-provided Retry-After hint on the previous failure
	// (RetryAfterError) overrides the schedule for that attempt.
	Backoff func(attempt int) time.Duration
	// Sleep is the clock used between attempts; nil means time.Sleep
	// (tests inject a fake).
	Sleep func(time.Duration)
	// Context, when non-nil, aborts retrying: a backoff wait in progress
	// returns as soon as the context is cancelled, and no further attempt
	// is made — Search returns the context's error. Long crawls wire
	// their shutdown signal here so a worker stuck in exponential backoff
	// does not hold the pipeline open. When the context carries a
	// deadline, a backoff that would outlive it is never slept: Search
	// fails fast with context.DeadlineExceeded so retries only ever
	// consume the *remaining* deadline budget.
	Context context.Context
	// Budget, when non-nil, gates every re-attempt through a retry token
	// bucket: a denied withdrawal ends the retry loop immediately with
	// the last error, whatever Retries says. This is the attempt-level
	// storm guard; the crawl loop's requeue path keeps its own
	// merge-stage budget for deterministic accounting.
	Budget *RetryBudget
	// Obs, when non-nil, records every re-attempt (with its backoff wait
	// and the error that caused it) into the observability sink.
	Obs *obs.Obs

	// RetriedCalls counts Search calls that needed at least one retry;
	// TotalRetries counts individual re-attempts. Updates are guarded by
	// mu (the dispatcher issues through one shared Retrying from many
	// workers); read them only after concurrent Searches have returned.
	RetriedCalls int
	TotalRetries int

	mu sync.Mutex
}

// Search implements Searcher.
func (r *Retrying) Search(q Query) ([]*relational.Record, error) {
	return r.searchCtx(r.Context, q)
}

// SearchCtx is Search under the given request context; it takes
// precedence over the configured Context.
func (r *Retrying) SearchCtx(ctx context.Context, q Query) ([]*relational.Record, error) {
	if ctx == nil {
		ctx = r.Context
	}
	return r.searchCtx(ctx, q)
}

func (r *Retrying) searchCtx(ctx context.Context, q Query) ([]*relational.Record, error) {
	transient := r.IsTransient
	if transient == nil {
		transient = func(err error) bool {
			return !errors.Is(err, ErrBudgetExhausted) && !errors.Is(err, ErrTruncated)
		}
	}
	sleep := r.Sleep
	if sleep == nil {
		if ctx == nil {
			sleep = time.Sleep
		} else {
			// Interruptible wait: whichever of the timer and the
			// cancellation fires first ends the backoff.
			sleep = func(d time.Duration) {
				t := time.NewTimer(d)
				defer t.Stop()
				select {
				case <-t.C:
				case <-ctx.Done():
				}
			}
		}
	}
	var lastErr error
	for attempt := 0; attempt <= r.Retries; attempt++ {
		if attempt > 0 {
			if r.Budget != nil && !r.Budget.Withdraw() {
				// Retry budget drained: returning the last error here is
				// what keeps a fault burst from amplifying into a storm.
				return nil, fmt.Errorf("deepweb: retry budget exhausted after %d attempts: %w", attempt, lastErr)
			}
			r.mu.Lock()
			r.TotalRetries++
			if attempt == 1 {
				r.RetriedCalls++
			}
			r.mu.Unlock()
			var wait time.Duration
			if r.Backoff != nil {
				wait = r.Backoff(attempt)
			}
			// A server that said how long to back off knows better than
			// our schedule does.
			var ra *RetryAfterError
			if errors.As(lastErr, &ra) && ra.After > 0 {
				wait = ra.After
			}
			// Never schedule a backoff past the deadline: the attempt it
			// would lead into is already doomed, so fail fast and leave
			// the remaining budget to queries that can still finish.
			if ctx != nil && wait > 0 {
				if dl, ok := ctx.Deadline(); ok && time.Now().Add(wait).After(dl) {
					return nil, fmt.Errorf("deepweb: backoff %s exceeds deadline after %d attempts (%v): %w",
						wait, attempt, lastErr, context.DeadlineExceeded)
				}
			}
			r.Obs.Retry(q.Key(), attempt, wait, lastErr)
			if wait > 0 {
				sleep(wait)
			}
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		recs, err := SearchWith(ctx, r.S, q)
		if err == nil {
			return recs, nil
		}
		lastErr = err
		if !transient(err) {
			// Forward any records alongside the error: a TruncatedError
			// carries the partial page its caller may still absorb.
			return recs, err
		}
	}
	return nil, fmt.Errorf("deepweb: %d attempts failed: %w", r.Retries+1, lastErr)
}

// K implements Searcher.
func (r *Retrying) K() int { return r.S.K() }

// ExponentialBackoff returns a Backoff function starting at base and
// doubling each attempt, capped at max.
func ExponentialBackoff(base, max time.Duration) func(int) time.Duration {
	return func(attempt int) time.Duration {
		d := base
		for i := 1; i < attempt; i++ {
			d *= 2
			if d >= max {
				return max
			}
		}
		if d > max {
			return max
		}
		return d
	}
}
