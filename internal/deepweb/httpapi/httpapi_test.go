package httpapi

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/fixture"
	"smartcrawl/internal/match"
	"smartcrawl/internal/sample"
	"smartcrawl/internal/tokenize"
)

func newTestServer(t *testing.T, limiter *TokenBucket) (*httptest.Server, *fixture.Universe) {
	t.Helper()
	u := fixture.New()
	srv := NewServer(u.DB, u.Tokenizer, limiter)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, u
}

func TestSearchOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	c := &Client{BaseURL: ts.URL}
	recs, err := c.Search(deepweb.Query{"ramen", "saigon"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Value(0) != "Saigon Ramen" {
		t.Fatalf("recs = %v", recs)
	}
	if c.K() != 2 {
		t.Fatalf("K = %d after first search", c.K())
	}
}

func TestServerNormalizesQuery(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	// Raw (unsorted, mixed-case) query text must be normalized
	// server-side; the Go client validates before sending, so hit the
	// endpoint directly.
	resp, err := ts.Client().Get(ts.URL + "/search?q=Saigon+RAMEN+saigon")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestServerRejectsEmptyQuery(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	resp, err := ts.Client().Get(ts.URL + "/search?q=")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestServerMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	resp, err := ts.Client().Post(ts.URL+"/search", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestRateLimiting(t *testing.T) {
	// 3 tokens, no refill: the 4th request must 429.
	ts, _ := newTestServer(t, NewTokenBucket(3, 0))
	c := &Client{BaseURL: ts.URL}
	for i := 0; i < 3; i++ {
		if _, err := c.Search(deepweb.Query{"thai"}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if _, err := c.Search(deepweb.Query{"thai"}); err == nil {
		t.Fatal("4th request should be rate limited")
	} else if !strings.Contains(err.Error(), "429") {
		t.Fatalf("err = %v, want 429", err)
	}
}

func TestClientRetriesAfter429(t *testing.T) {
	bucket := NewTokenBucket(1, 20) // refills fast
	ts, _ := newTestServer(t, bucket)
	c := &Client{BaseURL: ts.URL, Retries: 3, RetryDelay: 100 * time.Millisecond}
	if _, err := c.Search(deepweb.Query{"thai"}); err != nil {
		t.Fatal(err)
	}
	// Bucket empty now; retry should succeed after refill.
	if _, err := c.Search(deepweb.Query{"thai"}); err != nil {
		t.Fatalf("retried search failed: %v", err)
	}
}

func TestClientValidatesQueries(t *testing.T) {
	c := &Client{BaseURL: "http://example.invalid"}
	if _, err := c.Search(deepweb.Query{"NOT-LOWER"}); err == nil {
		t.Fatal("client must validate before sending")
	}
}

func TestTokenBucketRefill(t *testing.T) {
	b := NewTokenBucket(2, 1000)
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }
	b.last = now
	if !b.Allow() || !b.Allow() {
		t.Fatal("bucket should start full")
	}
	if b.Allow() {
		t.Fatal("bucket should be empty")
	}
	now = now.Add(10 * time.Millisecond) // +10 tokens, capped at 2
	if !b.Allow() || !b.Allow() {
		t.Fatal("bucket should refill")
	}
	if b.Allow() {
		t.Fatal("refill must cap at capacity")
	}
}

// TestCrawlThroughHTTP runs a full SMARTCRAWL against the HTTP interface —
// the crawler cannot tell it apart from the in-memory database.
func TestCrawlThroughHTTP(t *testing.T) {
	ts, u := newTestServer(t, nil)
	tk := tokenize.New()
	client := &Client{BaseURL: ts.URL}
	// Prime K.
	if err := client.Probe(deepweb.Query{"thai"}); err != nil {
		t.Fatal(err)
	}
	env := &crawler.Env{
		Local:     u.Local,
		Searcher:  client,
		Tokenizer: tk,
		Matcher:   match.NewExactOn(tk, nil, []int{0}),
	}
	smp := &sample.Sample{Records: u.Sample.Records, Theta: u.Theta}
	c, err := crawler.NewSmart(env, crawler.SmartConfig{Sample: smp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredCount != 4 {
		t.Fatalf("HTTP crawl covered %d of 4", res.CoveredCount)
	}
}

// faultyTestServer serves the fixture database through a Faulty wrapper,
// the same wiring cmd/hiddenserver uses for -fault-profile.
func faultyTestServer(t *testing.T, p deepweb.FaultProfile) *httptest.Server {
	t.Helper()
	u := fixture.New()
	srv := NewServer(deepweb.NewFaulty(u.DB, p), u.Tokenizer, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestServerMapsInjectedFaults pins the HTTP status mapping for each
// injected fault class: truncation is a silent 200 partial page (the
// client cannot detect it — that is the point), 429 for rate-limit bursts,
// 504 for timeouts, 503 for unavailability.
func TestServerMapsInjectedFaults(t *testing.T) {
	status := func(ts *httptest.Server) int {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/search?q=thai")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	t.Run("truncate serves partial page as 200", func(t *testing.T) {
		ts := faultyTestServer(t, deepweb.FaultProfile{Seed: 1, Truncate: 1, TruncateFrac: 0.5})
		c := &Client{BaseURL: ts.URL}
		// The fixture's "thai" matches 2 records (k=2); the cut page has 1.
		recs, err := c.Search(deepweb.Query{"thai"})
		if err != nil {
			t.Fatalf("a silently truncated page must look like success: %v", err)
		}
		if len(recs) != 1 {
			t.Fatalf("got %d records, want the truncated 1", len(recs))
		}
	})
	t.Run("rate-limit burst maps to 429", func(t *testing.T) {
		ts := faultyTestServer(t, deepweb.FaultProfile{Seed: 1, RateLimit: 1, BurstLen: 1})
		if got := status(ts); got != 429 {
			t.Fatalf("status %d, want 429", got)
		}
		// The Go client classifies the 429 as deepweb.ErrRateLimited so the
		// crawl loop's refund accounting recognizes the uncharged denial.
		if _, err := (&Client{BaseURL: ts.URL}).Search(deepweb.Query{"house"}); !errors.Is(err, deepweb.ErrRateLimited) {
			t.Fatalf("client err = %v, want ErrRateLimited", err)
		}
	})
	t.Run("timeout maps to 504", func(t *testing.T) {
		ts := faultyTestServer(t, deepweb.FaultProfile{Seed: 1, Timeout: 1})
		if got := status(ts); got != 504 {
			t.Fatalf("status %d, want 504", got)
		}
	})
	t.Run("unavailable maps to 503", func(t *testing.T) {
		ts := faultyTestServer(t, deepweb.FaultProfile{Seed: 1, Unavailable: 1})
		if got := status(ts); got != 503 {
			t.Fatalf("status %d, want 503", got)
		}
	})
	t.Run("client retries through a transient outage", func(t *testing.T) {
		// FailAttempts=2: the first two requests 504, the third succeeds —
		// within the client's retry budget.
		ts := faultyTestServer(t, deepweb.FaultProfile{Seed: 1, Timeout: 1, FailAttempts: 2})
		c := &Client{BaseURL: ts.URL, Retries: 2, RetryDelay: time.Millisecond}
		recs, err := c.Search(deepweb.Query{"thai"})
		if err != nil {
			t.Fatalf("retries should outlast the outage: %v", err)
		}
		if len(recs) != 2 {
			t.Fatalf("got %d records after recovery, want 2", len(recs))
		}
	})
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, NewTokenBucket(2, 0))
	c := &Client{BaseURL: ts.URL}
	_, _ = c.Search(deepweb.Query{"thai"})
	_, _ = c.Search(deepweb.Query{"house"})
	_, _ = c.Search(deepweb.Query{"ramen"}) // rate limited

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["searches"] != 2 || stats["rate_limited"] != 1 {
		t.Fatalf("stats = %v", stats)
	}
}
