// Package httpapi exposes a hidden database's keyword-search interface
// over HTTP and provides a client that implements deepweb.Searcher against
// such an endpoint. It makes the reproduction's "restricted interface"
// literal: the crawler side sees nothing but an HTTP API with a top-k
// limit and a request quota, exactly like the Yelp/Google endpoints that
// motivate the paper (§1). A token-bucket rate limiter simulates per-day
// API quotas.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// searchResponse is the JSON wire format of a search result.
type searchResponse struct {
	K       int          `json:"k"`
	Records []wireRecord `json:"records"`
}

type wireRecord struct {
	ID     int      `json:"id"`
	Values []string `json:"values"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Server serves a Searcher over HTTP.
//
//	GET /search?q=thai+noodle   → {"k":50,"records":[{"id":7,"values":[…]}]}
//	GET /healthz                → {"status":"ok"}
//	GET /stats                  → {"searches":123,"rate_limited":4,"errors":1}
type Server struct {
	searcher deepweb.Searcher
	tk       *tokenize.Tokenizer
	limiter  *TokenBucket // nil = unlimited
	obs      *obs.Obs     // nil = uninstrumented

	mu          sync.Mutex
	searches    int
	rateLimited int
	errors      int
}

// NewServer wraps searcher. A nil limiter disables rate limiting.
func NewServer(searcher deepweb.Searcher, tk *tokenize.Tokenizer, limiter *TokenBucket) *Server {
	return &Server{searcher: searcher, tk: tk, limiter: limiter}
}

// SetObs attaches an observability sink: live query counters, per-request
// search latency, rate-limit denials. cmd/hiddenserver publishes the
// sink's snapshot at /debug/vars. Call before serving.
func (s *Server) SetObs(o *obs.Obs) { s.obs = o }

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		resp := map[string]int{
			"searches":     s.searches,
			"rate_limited": s.rateLimited,
			"errors":       s.errors,
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

func (s *Server) count(field *int) {
	s.mu.Lock()
	*field++
	s.mu.Unlock()
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	if s.limiter != nil && !s.limiter.Allow() {
		s.count(&s.rateLimited)
		if s.obs != nil {
			s.obs.RateLimitDenied(r.URL.Query().Get("q"), 0)
		}
		// Real quota meters tell the client when to come back; ours
		// refills continuously, so one second is always enough to earn a
		// token at any sane refill rate.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{"rate limit exceeded"})
		return
	}
	raw := r.URL.Query().Get("q")
	q := deepweb.Query(s.tk.NormalizeQuery(raw))
	if len(q) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"empty query"})
		return
	}
	var start time.Time
	if s.obs != nil {
		start = time.Now()
	}
	recs, err := s.searcher.Search(q)
	if s.obs != nil {
		s.obs.SearchDone(time.Since(start), deepweb.SearchFailed(err))
	}
	if err != nil {
		// Map injected faults to the HTTP status a real interface would
		// produce; a truncated page is served as a plain 200 — real APIs
		// cut result lists silently, so the wire client cannot tell.
		var te *deepweb.TruncatedError
		switch {
		case errors.As(err, &te):
			// fall through to the 200 path with the partial records
		case errors.Is(err, deepweb.ErrRateLimited):
			s.count(&s.rateLimited)
			if s.obs != nil {
				s.obs.RateLimitDenied(q.Key(), 0)
			}
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorResponse{"rate limit exceeded"})
			return
		case errors.Is(err, deepweb.ErrInjectedTimeout):
			s.count(&s.errors)
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{err.Error()})
			return
		case errors.Is(err, deepweb.ErrUnavailable):
			s.count(&s.errors)
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{err.Error()})
			return
		default:
			s.count(&s.errors)
			writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
			return
		}
	}
	s.count(&s.searches)
	if s.obs != nil {
		s.obs.SearchServed(q.Key(), len(recs), len(recs) < s.searcher.K())
	}
	resp := searchResponse{K: s.searcher.K(), Records: make([]wireRecord, len(recs))}
	for i, rec := range recs {
		resp.Records[i] = wireRecord{ID: rec.ID, Values: rec.Values}
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// Client implements deepweb.Searcher against a Server endpoint.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
	// Retries re-issues a request after a 429, waiting RetryDelay
	// between attempts (real crawlers must respect quotas; the default
	// of 0 surfaces the 429 as an error).
	Retries    int
	RetryDelay time.Duration
	// Context cancels in-flight requests; nil means background.
	Context context.Context

	mu sync.Mutex
	k  int // cached from the first response
}

// Search implements deepweb.Searcher.
func (c *Client) Search(q deepweb.Query) ([]*relational.Record, error) {
	return c.SearchCtx(nil, q)
}

// SearchCtx implements deepweb.ContextSearcher: ctx bounds every request of
// the retry loop (a crawl deadline or per-query timeout), overriding the
// client-wide Context when non-nil.
func (c *Client) SearchCtx(ctx context.Context, q deepweb.Query) ([]*relational.Record, error) {
	if err := deepweb.Validate(q); err != nil {
		return nil, err
	}
	u := strings.TrimRight(c.BaseURL, "/") + "/search?q=" + url.QueryEscape(q.String())
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		recs, retryable, err := c.doSearch(ctx, u)
		if err == nil {
			return recs, nil
		}
		lastErr = err
		if !retryable {
			break
		}
		if attempt < c.Retries {
			time.Sleep(c.RetryDelay)
		}
	}
	return nil, lastErr
}

func (c *Client) doSearch(ctx context.Context, u string) (recs []*relational.Record, retryable bool, err error) {
	if ctx == nil {
		ctx = c.Context
	}
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, false, err
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("httpapi: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, false, fmt.Errorf("httpapi: reading response: %w", err)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// Wrapping ErrRateLimited lets budget accounting upstream refund
		// the unit (deepweb.Charged): the server never ran the query. A
		// Retry-After header (integer seconds) becomes a RetryAfterError so
		// backoff layers wait exactly as long as the server asked.
		rlErr := fmt.Errorf("httpapi: rate limited (429): %w", deepweb.ErrRateLimited)
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			return nil, true, &deepweb.RetryAfterError{After: time.Duration(secs) * time.Second, Err: rlErr}
		}
		return nil, true, rlErr
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		_ = json.Unmarshal(body, &er)
		// 5xx is transient (the backend may recover); 4xx is not.
		return nil, resp.StatusCode >= 500, fmt.Errorf("httpapi: status %d: %s", resp.StatusCode, er.Error)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return nil, false, fmt.Errorf("httpapi: decoding response: %w", err)
	}
	c.mu.Lock()
	c.k = sr.K
	c.mu.Unlock()
	out := make([]*relational.Record, len(sr.Records))
	for i, wr := range sr.Records {
		out[i] = &relational.Record{ID: wr.ID, Values: wr.Values}
	}
	return out, false, nil
}

// K implements deepweb.Searcher. Before any successful Search it probes the
// endpoint with a throwaway request-free default of 0; callers should issue
// Probe first when they need K up front.
func (c *Client) K() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.k
}

// Probe fetches the interface's k by issuing one cheap query ("a" is a
// stop word server-side, so use a digit that may or may not match).
func (c *Client) Probe(q deepweb.Query) error {
	_, err := c.Search(q)
	return err
}

// TokenBucket is a thread-safe token-bucket rate limiter: capacity tokens,
// refilled at rate tokens per interval. Allow is non-blocking.
type TokenBucket struct {
	mu       sync.Mutex
	tokens   float64
	capacity float64
	perSec   float64
	last     time.Time
	now      func() time.Time
}

// NewTokenBucket creates a bucket holding capacity tokens, refilled at
// refill tokens/second. It starts full.
func NewTokenBucket(capacity int, refillPerSec float64) *TokenBucket {
	return &TokenBucket{
		tokens:   float64(capacity),
		capacity: float64(capacity),
		perSec:   refillPerSec,
		last:     time.Now(),
		now:      time.Now,
	}
}

// Allow consumes one token if available.
func (b *TokenBucket) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.perSec
	b.last = now
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
