package deepweb_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
)

// TestBreakerLifecycle walks the full closed → open → half-open → closed
// cycle, pinning the count-based cooldown semantics the crawl loop relies
// on (one Allow per held round).
func TestBreakerLifecycle(t *testing.T) {
	o := obs.New()
	b := deepweb.NewBreaker(deepweb.BreakerConfig{
		FailureThreshold: 3, Cooldown: 4, HalfOpenProbes: 1,
	}).WithObs(o)

	if b.State() != deepweb.BreakerClosed {
		t.Fatal("new breaker must start closed")
	}
	// A success resets the consecutive-failure count.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != deepweb.BreakerClosed {
		t.Fatal("non-consecutive failures must not trip the breaker")
	}
	b.Failure() // third consecutive → open
	if b.State() != deepweb.BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d after threshold, want open/1", b.State(), b.Trips())
	}
	// Cooldown is counted in Allow calls: the first Cooldown-1 are
	// rejected, the one that exhausts it is admitted as the probe.
	for i := 0; i < 3; i++ {
		if b.Allow() {
			t.Fatalf("Allow #%d during cooldown must reject", i+1)
		}
	}
	if !b.Allow() {
		t.Fatal("the Allow that exhausts the cooldown must admit the probe")
	}
	if b.State() != deepweb.BreakerHalfOpen {
		t.Fatalf("state=%v after cooldown, want half_open", b.State())
	}
	// Probe failure reopens immediately, restarting the cooldown.
	b.Failure()
	if b.State() != deepweb.BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state=%v trips=%d after failed probe, want open/2", b.State(), b.Trips())
	}
	for !b.Allow() {
	}
	b.Success() // probe succeeds → closed
	if b.State() != deepweb.BreakerClosed {
		t.Fatalf("state=%v after successful probe, want closed", b.State())
	}
	// Closing resets the failure count: it takes a full threshold to trip
	// again.
	b.Failure()
	b.Failure()
	if b.State() != deepweb.BreakerClosed {
		t.Fatal("failure count must reset when the circuit closes")
	}
}

// TestBreakerRecordClassification: which errors count against the backend.
func TestBreakerRecordClassification(t *testing.T) {
	for _, tc := range []struct {
		name  string
		err   error
		trips bool // does repeating it open a threshold-2 breaker?
	}{
		{"nil is success", nil, false},
		{"truncated is success (data came back)", &deepweb.TruncatedError{Full: 10, Returned: 5}, false},
		{"budget exhausted is neutral", deepweb.ErrBudgetExhausted, false},
		{"cancellation is neutral", context.Canceled, false},
		{"deadline is neutral", context.DeadlineExceeded, false},
		{"timeout is failure", deepweb.ErrInjectedTimeout, true},
		{"rate limit is failure", deepweb.ErrRateLimited, true},
		{"unknown error is failure", errors.New("http 500"), true},
	} {
		b := deepweb.NewBreaker(deepweb.BreakerConfig{FailureThreshold: 2})
		b.Record(tc.err)
		b.Record(tc.err)
		if got := b.State() == deepweb.BreakerOpen; got != tc.trips {
			t.Errorf("%s: open=%v, want %v", tc.name, got, tc.trips)
		}
	}
	// Neutral errors must not reset the failure streak either: a run of
	// failures interleaved with cancellations still trips.
	b := deepweb.NewBreaker(deepweb.BreakerConfig{FailureThreshold: 2})
	b.Record(errors.New("boom"))
	b.Record(context.Canceled)
	b.Record(errors.New("boom"))
	if b.State() != deepweb.BreakerOpen {
		t.Fatal("neutral Record must not reset the consecutive-failure count")
	}
}

// searcherFunc adapts a closure to deepweb.Searcher for these tests.
type searcherFunc struct {
	f func(deepweb.Query) ([]*relational.Record, error)
	k int
}

func (s searcherFunc) Search(q deepweb.Query) ([]*relational.Record, error) { return s.f(q) }
func (s searcherFunc) K() int                                               { return s.k }

// TestGuardedFailFast: once the circuit opens, Guarded rejects without
// touching the backend, ErrCircuitOpen is uncharged (the interface never
// saw the query), and Retrying's default classifier would re-attempt it.
func TestGuardedFailFast(t *testing.T) {
	br := deepweb.NewBreaker(deepweb.BreakerConfig{FailureThreshold: 2, Cooldown: 100})
	calls := 0
	g := &deepweb.Guarded{
		S: searcherFunc{
			f: func(q deepweb.Query) ([]*relational.Record, error) {
				calls++
				return nil, errors.New("down")
			},
			k: 10,
		},
		B: br,
	}
	for i := 0; i < 2; i++ {
		if _, err := g.Search(deepweb.Query{"q"}); err == nil {
			t.Fatal("backend error must surface")
		}
	}
	if br.State() != deepweb.BreakerOpen {
		t.Fatalf("state=%v, want open", br.State())
	}
	_, err := g.Search(deepweb.Query{"q"})
	if !errors.Is(err, deepweb.ErrCircuitOpen) {
		t.Fatalf("err=%v, want ErrCircuitOpen", err)
	}
	if calls != 2 {
		t.Fatalf("backend saw %d calls, want 2 (open circuit must not pass traffic)", calls)
	}
	if deepweb.Charged(deepweb.ErrCircuitOpen) {
		t.Fatal("a circuit-open rejection never reached the interface; it must not be charged")
	}
	if g.K() != 10 {
		t.Fatal("K must pass through Guarded")
	}
}

// TestGuardedConcurrent hammers one Guarded searcher from many goroutines
// (run under -race). The backend flips between outage and recovery; the
// invariant checked is purely that every call returns either records or a
// classified error and the breaker lands in a valid state.
func TestGuardedConcurrent(t *testing.T) {
	var mu sync.Mutex
	n := 0
	backend := searcherFunc{
		f: func(q deepweb.Query) ([]*relational.Record, error) {
			mu.Lock()
			n++
			fail := n%7 < 3
			mu.Unlock()
			if fail {
				return nil, deepweb.ErrUnavailable
			}
			return []*relational.Record{{ID: 1}}, nil
		},
		k: 1,
	}
	br := deepweb.NewBreaker(deepweb.BreakerConfig{FailureThreshold: 3, Cooldown: 2})
	g := &deepweb.Guarded{S: backend, B: br}

	var wg sync.WaitGroup
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				recs, err := g.Search(deepweb.Query{"q"})
				if err == nil && len(recs) != 1 {
					t.Error("success with no records")
					return
				}
				if err != nil && !errors.Is(err, deepweb.ErrCircuitOpen) && !errors.Is(err, deepweb.ErrUnavailable) {
					t.Errorf("unexpected error %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	switch br.State() {
	case deepweb.BreakerClosed, deepweb.BreakerOpen, deepweb.BreakerHalfOpen:
	default:
		t.Fatalf("breaker in invalid state %v", br.State())
	}
}
