package deepweb_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/fixture"
	"smartcrawl/internal/match"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
)

var errFlaky = errors.New("transient network failure")

// flaky fails every n-th Search call.
type flaky struct {
	s     deepweb.Searcher
	every int
	calls int
	fails int
}

func (f *flaky) Search(q deepweb.Query) ([]*relational.Record, error) {
	f.calls++
	if f.every > 0 && f.calls%f.every == 0 {
		f.fails++
		return nil, errFlaky
	}
	return f.s.Search(q)
}

func (f *flaky) K() int { return f.s.K() }

func TestRetryingRecoversTransientFailures(t *testing.T) {
	u := fixture.New()
	fl := &flaky{s: u.DB, every: 2} // every 2nd call fails
	r := &deepweb.Retrying{S: fl, Retries: 3}
	for i := 0; i < 10; i++ {
		if _, err := r.Search(deepweb.Query{"thai"}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if r.RetriedCalls == 0 || fl.fails == 0 {
		t.Fatalf("expected retries (retried=%d, fails=%d)", r.RetriedCalls, fl.fails)
	}
	if r.K() != u.DB.K() {
		t.Fatal("K must pass through")
	}
}

func TestRetryingGivesUpAfterRetries(t *testing.T) {
	u := fixture.New()
	fl := &flaky{s: u.DB, every: 1} // always fails
	r := &deepweb.Retrying{S: fl, Retries: 2}
	_, err := r.Search(deepweb.Query{"thai"})
	if !errors.Is(err, errFlaky) {
		t.Fatalf("err = %v, want wrapped errFlaky", err)
	}
	if fl.calls != 3 {
		t.Fatalf("calls = %d, want 3 (1 + 2 retries)", fl.calls)
	}
}

func TestRetryingRespectsNonTransient(t *testing.T) {
	u := fixture.New()
	fl := &flaky{s: u.DB, every: 1}
	r := &deepweb.Retrying{
		S:           fl,
		Retries:     5,
		IsTransient: func(error) bool { return false },
	}
	if _, err := r.Search(deepweb.Query{"thai"}); err == nil {
		t.Fatal("expected error")
	}
	if fl.calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry)", fl.calls)
	}
}

func TestRetryingDoesNotRetryBudgetExhaustion(t *testing.T) {
	u := fixture.New()
	counting := deepweb.NewCounting(u.DB, 1)
	r := &deepweb.Retrying{S: counting, Retries: 5}
	if _, err := r.Search(deepweb.Query{"thai"}); err != nil {
		t.Fatal(err)
	}
	_, err := r.Search(deepweb.Query{"house"})
	if !errors.Is(err, deepweb.ErrBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
	if counting.Issued() != 1 {
		t.Fatalf("budget exhaustion must not be retried (issued %d)", counting.Issued())
	}
}

func TestRetryingBackoffSchedule(t *testing.T) {
	u := fixture.New()
	fl := &flaky{s: u.DB, every: 1}
	var waits []time.Duration
	r := &deepweb.Retrying{
		S:       fl,
		Retries: 3,
		Backoff: deepweb.ExponentialBackoff(100*time.Millisecond, 350*time.Millisecond),
		Sleep:   func(d time.Duration) { waits = append(waits, d) },
	}
	_, _ = r.Search(deepweb.Query{"thai"})
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 350 * time.Millisecond}
	if len(waits) != len(want) {
		t.Fatalf("waits = %v", waits)
	}
	for i := range want {
		if waits[i] != want[i] {
			t.Fatalf("wait %d = %v, want %v", i, waits[i], want[i])
		}
	}
}

func TestExponentialBackoffCap(t *testing.T) {
	b := deepweb.ExponentialBackoff(time.Second, 4*time.Second)
	if b(1) != time.Second || b(2) != 2*time.Second || b(3) != 4*time.Second || b(10) != 4*time.Second {
		t.Fatalf("backoff schedule wrong: %v %v %v %v", b(1), b(2), b(3), b(10))
	}
}

// TestRetryingContextCancellation is the table-driven cancellation matrix:
// a context cancelled before the call, mid-backoff (by the fake sleep), or
// never. Cancellation mid-backoff must surface the context error without
// spending further attempts on the wrapped searcher.
func TestRetryingContextCancellation(t *testing.T) {
	cases := []struct {
		name string
		// cancelOnSleep cancels the context during the n-th backoff wait
		// (1-based); 0 cancels before Search is called; -1 never cancels.
		cancelOnSleep int
		retries       int
		wantErr       error
		wantCalls     int // attempts that reach the wrapped searcher
	}{
		{name: "cancelled before call", cancelOnSleep: 0, retries: 5, wantErr: context.Canceled, wantCalls: 0},
		{name: "cancelled during first backoff", cancelOnSleep: 1, retries: 5, wantErr: context.Canceled, wantCalls: 1},
		{name: "cancelled during third backoff", cancelOnSleep: 3, retries: 5, wantErr: context.Canceled, wantCalls: 3},
		{name: "never cancelled, retries exhausted", cancelOnSleep: -1, retries: 2, wantErr: errFlaky, wantCalls: 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := fixture.New()
			fl := &flaky{s: u.DB, every: 1} // always fails
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if tc.cancelOnSleep == 0 {
				cancel()
			}
			sleeps := 0
			r := &deepweb.Retrying{
				S:       fl,
				Retries: tc.retries,
				Context: ctx,
				Backoff: deepweb.ExponentialBackoff(time.Millisecond, 8*time.Millisecond),
				Sleep: func(time.Duration) {
					sleeps++
					if sleeps == tc.cancelOnSleep {
						cancel() // the cancellation lands mid-backoff
					}
				},
			}
			_, err := r.Search(deepweb.Query{"thai"})
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if fl.calls != tc.wantCalls {
				t.Fatalf("searcher saw %d attempts, want %d", fl.calls, tc.wantCalls)
			}
		})
	}
}

// TestRetryingTokenBucketInteraction is the table-driven throttling matrix:
// Retrying wraps Limited, the bucket refills on the fake clock that the
// backoff advances, so "retry after N failures" and "tokens after T
// seconds" interact exactly as they would against a live quota.
func TestRetryingTokenBucketInteraction(t *testing.T) {
	cases := []struct {
		name         string
		capacity     int
		refillPerSec float64
		retries      int
		calls        int // sequential Search calls to issue
		wantOK       int // calls that must succeed
		wantErr      error
	}{
		// 1 token up front, 1 token/s refill, backoff advances the clock
		// 1s per attempt: every call eventually gets a token.
		{name: "refill outpaces retries", capacity: 1, refillPerSec: 1, retries: 3, calls: 4, wantOK: 4},
		// No refill at all: the first call drains the bucket, the second
		// burns every retry and surfaces ErrRateLimited.
		{name: "no refill exhausts retries", capacity: 1, refillPerSec: 0, retries: 3, calls: 2, wantOK: 1, wantErr: deepweb.ErrRateLimited},
		// Slow refill (one token per 4s = 4 backoff steps): exactly at
		// the retry horizon, so each call succeeds on its final attempt.
		{name: "refill lands on last retry", capacity: 1, refillPerSec: 0.25, retries: 4, calls: 3, wantOK: 3},
		// Slow refill, too few retries: fails after the first token.
		{name: "refill beyond retry horizon", capacity: 1, refillPerSec: 0.2, retries: 2, calls: 2, wantOK: 1, wantErr: deepweb.ErrRateLimited},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := fixture.New()
			clk := newFakeClock()
			bucket := deepweb.NewBucket(tc.capacity, tc.refillPerSec).WithClock(clk.now)
			limited := &deepweb.Limited{S: u.DB, B: bucket}
			r := &deepweb.Retrying{
				S:       limited,
				Retries: tc.retries,
				Backoff: func(int) time.Duration { return time.Second },
				// The fake sleep advances the fake clock, refilling the
				// bucket the way real waiting would.
				Sleep: func(d time.Duration) { clk.advance(d) },
			}
			ok := 0
			var lastErr error
			for i := 0; i < tc.calls; i++ {
				if _, err := r.Search(deepweb.Query{"thai"}); err != nil {
					lastErr = err
				} else {
					ok++
				}
			}
			if ok != tc.wantOK {
				t.Fatalf("%d calls succeeded, want %d (last error: %v)", ok, tc.wantOK, lastErr)
			}
			if tc.wantErr != nil && !errors.Is(lastErr, tc.wantErr) {
				t.Fatalf("last error = %v, want %v", lastErr, tc.wantErr)
			}
		})
	}
}

// TestCrawlSurvivesFlakyInterface runs a full SMARTCRAWL through a flaky
// interface wrapped in Retrying: failure injection end to end.
func TestCrawlSurvivesFlakyInterface(t *testing.T) {
	u := fixture.New()
	fl := &flaky{s: u.DB, every: 3}
	retrying := &deepweb.Retrying{S: fl, Retries: 5}
	env := &crawler.Env{
		Local:     u.Local,
		Searcher:  retrying,
		Tokenizer: u.Tokenizer,
		Matcher:   match.NewExactOn(u.Tokenizer, nil, []int{0}),
	}
	smp := &sample.Sample{Records: u.Sample.Records, Theta: u.Theta}
	c, err := crawler.NewSmart(env, crawler.SmartConfig{
		Sample: smp, Estimator: estimator.Biased{},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredCount != 4 {
		t.Fatalf("flaky crawl covered %d of 4", res.CoveredCount)
	}
	if fl.fails == 0 {
		t.Fatal("fault injection did not fire")
	}
}
