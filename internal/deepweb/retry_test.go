package deepweb_test

import (
	"errors"
	"testing"
	"time"

	"smartcrawl/internal/crawler"
	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/estimator"
	"smartcrawl/internal/fixture"
	"smartcrawl/internal/match"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/sample"
)

var errFlaky = errors.New("transient network failure")

// flaky fails every n-th Search call.
type flaky struct {
	s     deepweb.Searcher
	every int
	calls int
	fails int
}

func (f *flaky) Search(q deepweb.Query) ([]*relational.Record, error) {
	f.calls++
	if f.every > 0 && f.calls%f.every == 0 {
		f.fails++
		return nil, errFlaky
	}
	return f.s.Search(q)
}

func (f *flaky) K() int { return f.s.K() }

func TestRetryingRecoversTransientFailures(t *testing.T) {
	u := fixture.New()
	fl := &flaky{s: u.DB, every: 2} // every 2nd call fails
	r := &deepweb.Retrying{S: fl, Retries: 3}
	for i := 0; i < 10; i++ {
		if _, err := r.Search(deepweb.Query{"thai"}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if r.RetriedCalls == 0 || fl.fails == 0 {
		t.Fatalf("expected retries (retried=%d, fails=%d)", r.RetriedCalls, fl.fails)
	}
	if r.K() != u.DB.K() {
		t.Fatal("K must pass through")
	}
}

func TestRetryingGivesUpAfterRetries(t *testing.T) {
	u := fixture.New()
	fl := &flaky{s: u.DB, every: 1} // always fails
	r := &deepweb.Retrying{S: fl, Retries: 2}
	_, err := r.Search(deepweb.Query{"thai"})
	if !errors.Is(err, errFlaky) {
		t.Fatalf("err = %v, want wrapped errFlaky", err)
	}
	if fl.calls != 3 {
		t.Fatalf("calls = %d, want 3 (1 + 2 retries)", fl.calls)
	}
}

func TestRetryingRespectsNonTransient(t *testing.T) {
	u := fixture.New()
	fl := &flaky{s: u.DB, every: 1}
	r := &deepweb.Retrying{
		S:           fl,
		Retries:     5,
		IsTransient: func(error) bool { return false },
	}
	if _, err := r.Search(deepweb.Query{"thai"}); err == nil {
		t.Fatal("expected error")
	}
	if fl.calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry)", fl.calls)
	}
}

func TestRetryingDoesNotRetryBudgetExhaustion(t *testing.T) {
	u := fixture.New()
	counting := deepweb.NewCounting(u.DB, 1)
	r := &deepweb.Retrying{S: counting, Retries: 5}
	if _, err := r.Search(deepweb.Query{"thai"}); err != nil {
		t.Fatal(err)
	}
	_, err := r.Search(deepweb.Query{"house"})
	if !errors.Is(err, deepweb.ErrBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
	if counting.Issued() != 1 {
		t.Fatalf("budget exhaustion must not be retried (issued %d)", counting.Issued())
	}
}

func TestRetryingBackoffSchedule(t *testing.T) {
	u := fixture.New()
	fl := &flaky{s: u.DB, every: 1}
	var waits []time.Duration
	r := &deepweb.Retrying{
		S:       fl,
		Retries: 3,
		Backoff: deepweb.ExponentialBackoff(100*time.Millisecond, 350*time.Millisecond),
		Sleep:   func(d time.Duration) { waits = append(waits, d) },
	}
	_, _ = r.Search(deepweb.Query{"thai"})
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 350 * time.Millisecond}
	if len(waits) != len(want) {
		t.Fatalf("waits = %v", waits)
	}
	for i := range want {
		if waits[i] != want[i] {
			t.Fatalf("wait %d = %v, want %v", i, waits[i], want[i])
		}
	}
}

func TestExponentialBackoffCap(t *testing.T) {
	b := deepweb.ExponentialBackoff(time.Second, 4*time.Second)
	if b(1) != time.Second || b(2) != 2*time.Second || b(3) != 4*time.Second || b(10) != 4*time.Second {
		t.Fatalf("backoff schedule wrong: %v %v %v %v", b(1), b(2), b(3), b(10))
	}
}

// TestCrawlSurvivesFlakyInterface runs a full SMARTCRAWL through a flaky
// interface wrapped in Retrying: failure injection end to end.
func TestCrawlSurvivesFlakyInterface(t *testing.T) {
	u := fixture.New()
	fl := &flaky{s: u.DB, every: 3}
	retrying := &deepweb.Retrying{S: fl, Retries: 5}
	env := &crawler.Env{
		Local:     u.Local,
		Searcher:  retrying,
		Tokenizer: u.Tokenizer,
		Matcher:   match.NewExactOn(u.Tokenizer, nil, []int{0}),
	}
	smp := &sample.Sample{Records: u.Sample.Records, Theta: u.Theta}
	c, err := crawler.NewSmart(env, crawler.SmartConfig{
		Sample: smp, Estimator: estimator.Biased{},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredCount != 4 {
		t.Fatalf("flaky crawl covered %d of 4", res.CoveredCount)
	}
	if fl.fails == 0 {
		t.Fatal("fault injection did not fire")
	}
}
