package deepweb_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/relational"
)

// stub is a well-behaved backend returning n records for every query.
type stub struct{ n, k int }

func (s stub) Search(q deepweb.Query) ([]*relational.Record, error) {
	recs := make([]*relational.Record, s.n)
	for i := range recs {
		recs[i] = &relational.Record{ID: i, Values: []string{q.Key()}}
	}
	return recs, nil
}

func (s stub) K() int { return s.k }

// probeQueries is a deterministic spread of query keys.
func probeQueries(n int) []deepweb.Query {
	qs := make([]deepweb.Query, n)
	for i := range qs {
		qs[i] = deepweb.Query{fmt.Sprintf("kw%02d", i)}
	}
	return qs
}

// outcomeOf summarizes one Search for order-independence comparison.
func outcomeOf(recs []*relational.Record, err error) string {
	switch {
	case err == nil:
		return fmt.Sprintf("ok:%d", len(recs))
	default:
		return fmt.Sprintf("recs:%d err:%v", len(recs), err)
	}
}

// TestFaultyScheduleIndependentOfCallOrder is the core determinism
// property: a query's fault behaviour is a pure function of (seed, query,
// per-query attempt number), so issuing the same queries in a different
// interleaving produces the same per-query outcome sequences.
func TestFaultyScheduleIndependentOfCallOrder(t *testing.T) {
	profile := deepweb.FaultProfile{
		Seed: 7, Timeout: 0.2, Unavailable: 0.2, RateLimit: 0.2, Truncate: 0.2, Stale: 0.2,
	}
	qs := probeQueries(40)
	const attempts = 4

	run := func(reverse bool) map[string][]string {
		f := deepweb.NewFaulty(stub{n: 10, k: 10}, profile)
		out := make(map[string][]string)
		// Forward order interleaves attempts across queries; reverse
		// order runs each query's attempts back to back. Any dependence
		// on global call order would split these.
		if reverse {
			for i := len(qs) - 1; i >= 0; i-- {
				for a := 0; a < attempts; a++ {
					out[qs[i].Key()] = append(out[qs[i].Key()], outcomeOf(f.Search(qs[i])))
				}
			}
		} else {
			for a := 0; a < attempts; a++ {
				for _, q := range qs {
					out[q.Key()] = append(out[q.Key()], outcomeOf(f.Search(q)))
				}
			}
		}
		return out
	}

	fwd, rev := run(false), run(true)
	for key, seq := range fwd {
		if got := fmt.Sprint(rev[key]); got != fmt.Sprint(seq) {
			t.Fatalf("query %q outcome sequence depends on call order:\nfwd: %v\nrev: %v", key, seq, rev[key])
		}
	}
	// The spread should actually exercise several classes, or the test
	// proves nothing.
	f := deepweb.NewFaulty(stub{n: 10, k: 10}, profile)
	for _, q := range qs {
		f.Search(q) //nolint:errcheck — probing the schedule
	}
	if len(f.Injected()) < 3 {
		t.Fatalf("profile injected too few classes to be meaningful: %v", f.Injected())
	}
}

// TestFaultyTransientRecovery pins the transient shape: timeout and
// unavailable queries fail exactly FailAttempts attempts, rate-limited
// queries exactly BurstLen, then recover.
func TestFaultyTransientRecovery(t *testing.T) {
	cases := []struct {
		name     string
		profile  deepweb.FaultProfile
		failures int
		sentinel error
	}{
		{"timeout", deepweb.FaultProfile{Seed: 1, Timeout: 1, FailAttempts: 2}, 2, deepweb.ErrInjectedTimeout},
		{"unavailable", deepweb.FaultProfile{Seed: 1, Unavailable: 1, FailAttempts: 3}, 3, deepweb.ErrUnavailable},
		{"rate_limit", deepweb.FaultProfile{Seed: 1, RateLimit: 1, BurstLen: 3}, 3, deepweb.ErrRateLimited},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := deepweb.NewFaulty(stub{n: 5, k: 5}, tc.profile)
			q := deepweb.Query{"thai"}
			for i := 0; i < tc.failures; i++ {
				recs, err := f.Search(q)
				if !errors.Is(err, tc.sentinel) {
					t.Fatalf("attempt %d: err = %v, want %v", i+1, err, tc.sentinel)
				}
				if len(recs) != 0 {
					t.Fatalf("attempt %d returned %d records with a transient error", i+1, len(recs))
				}
			}
			recs, err := f.Search(q)
			if err != nil || len(recs) != 5 {
				t.Fatalf("post-outage attempt: recs=%d err=%v, want clean success", len(recs), err)
			}
			// Other queries under the same profile share the schedule
			// shape but their attempt counters are independent.
			if _, err := f.Search(deepweb.Query{"noodle"}); !errors.Is(err, tc.sentinel) {
				t.Fatalf("fresh query must start its own outage, got %v", err)
			}
		})
	}
}

// TestFaultyTruncation: the cut page comes back WITH the error, the error
// carries the true size, and errors.Is/As both classify it.
func TestFaultyTruncation(t *testing.T) {
	f := deepweb.NewFaulty(stub{n: 10, k: 10}, deepweb.FaultProfile{Seed: 3, Truncate: 1, TruncateFrac: 0.5})
	recs, err := f.Search(deepweb.Query{"thai"})
	if !errors.Is(err, deepweb.ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	var te *deepweb.TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("err %T does not unwrap to *TruncatedError", err)
	}
	if te.Full != 10 || te.Returned != 5 || len(recs) != 5 {
		t.Fatalf("got %d records, TruncatedError{Full:%d Returned:%d}; want 5/10/5", len(recs), te.Full, te.Returned)
	}
	// Appending to the partial slice must not clobber the backend's
	// records (full-capacity reslice would).
	_ = append(recs, &relational.Record{ID: 99})
	again, _ := f.Search(deepweb.Query{"thai"})
	if again[len(again)-1].ID == 99 {
		t.Fatal("truncated slice aliases backend storage")
	}
}

// TestFaultyStaleDeterministic: staleness hides a per-record subset, the
// same one on every call and for every stale query.
func TestFaultyStaleDeterministic(t *testing.T) {
	f := deepweb.NewFaulty(stub{n: 20, k: 20}, deepweb.FaultProfile{Seed: 11, Stale: 1, StaleFrac: 0.5})
	first, err := f.Search(deepweb.Query{"thai"})
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 || len(first) == 20 {
		t.Fatalf("stale filter kept %d/20 records; want a proper subset (pick another seed?)", len(first))
	}
	second, _ := f.Search(deepweb.Query{"thai"})
	other, _ := f.Search(deepweb.Query{"noodle"})
	ids := func(recs []*relational.Record) string {
		s := ""
		for _, r := range recs {
			s += fmt.Sprintf("%d,", r.ID)
		}
		return s
	}
	if ids(first) != ids(second) {
		t.Fatal("stale subset changed between calls")
	}
	if ids(first) != ids(other) {
		t.Fatal("stale visibility must be per record, not per query")
	}
}

// TestParseFaultProfile covers presets, key=value specs, and rejection.
func TestParseFaultProfile(t *testing.T) {
	p, err := deepweb.ParseFaultProfile("transient10")
	if err != nil {
		t.Fatal(err)
	}
	if r := p.TransientRate(); r < 0.0999 || r > 0.1001 {
		t.Fatalf("transient10 preset has transient rate %v, want 0.10", r)
	}
	p, err = deepweb.ParseFaultProfile("timeout=0.05,truncate=0.1,truncate-frac=0.3,attempts=4,burst=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Timeout != 0.05 || p.Truncate != 0.1 || p.TruncateFrac != 0.3 || p.FailAttempts != 4 || p.BurstLen != 2 {
		t.Fatalf("spec parsed into %+v", p)
	}
	for _, bad := range []string{"bogus-preset", "wat=1", "timeout=x", "timeout=0.9,stale=0.9"} {
		if _, err := deepweb.ParseFaultProfile(bad); err == nil {
			t.Errorf("ParseFaultProfile(%q) accepted", bad)
		}
	}
	if len(deepweb.FaultPresetNames()) < 4 {
		t.Fatal("preset list lost entries")
	}
}

// TestChargedAndSearchFailed pin the two error classifiers the budget
// accounting and the dispatcher metrics rest on.
func TestChargedAndSearchFailed(t *testing.T) {
	ctxCanceled := fmt.Errorf("wrapped: %w", context.Canceled)
	for _, tc := range []struct {
		err             error
		charged, failed bool
	}{
		{nil, true, false},
		{deepweb.ErrRateLimited, false, true},
		{deepweb.ErrCircuitOpen, false, true},
		{ctxCanceled, false, false},
		{deepweb.ErrBudgetExhausted, true, false},
		{&deepweb.TruncatedError{Full: 10, Returned: 5}, true, false},
		{deepweb.ErrInjectedTimeout, true, true},
		{errors.New("http 500"), true, true},
	} {
		if got := deepweb.Charged(tc.err); got != tc.charged {
			t.Errorf("Charged(%v) = %v, want %v", tc.err, got, tc.charged)
		}
		if got := deepweb.SearchFailed(tc.err); got != tc.failed {
			t.Errorf("SearchFailed(%v) = %v, want %v", tc.err, got, tc.failed)
		}
	}
}

// TestResilienceStackComposed drives the full decorator stack — Retrying
// outside Limited outside Guarded outside Faulty — across fault classes,
// retry budgets, and breaker thresholds, pinning what the crawl loop can
// rely on from the composition.
func TestResilienceStackComposed(t *testing.T) {
	cases := []struct {
		name      string
		profile   deepweb.FaultProfile
		retries   int
		threshold int
		wantErr   error // sentinel via errors.Is; nil = success
		wantRecs  int
		wantState deepweb.BreakerState
	}{
		{"timeout absorbed by retry budget",
			deepweb.FaultProfile{Seed: 1, Timeout: 1, FailAttempts: 2}, 2, 10, nil, 8, deepweb.BreakerClosed},
		{"timeout outlives short retry budget",
			deepweb.FaultProfile{Seed: 1, Timeout: 1, FailAttempts: 2}, 1, 10, deepweb.ErrInjectedTimeout, 0, deepweb.BreakerClosed},
		{"unavailable absorbed by retry budget",
			deepweb.FaultProfile{Seed: 1, Unavailable: 1, FailAttempts: 2}, 2, 10, nil, 8, deepweb.BreakerClosed},
		{"rate-limit burst waited out",
			deepweb.FaultProfile{Seed: 1, RateLimit: 1, BurstLen: 3}, 3, 10, nil, 8, deepweb.BreakerClosed},
		{"rate-limit burst outlives retries",
			deepweb.FaultProfile{Seed: 1, RateLimit: 1, BurstLen: 3}, 1, 10, deepweb.ErrRateLimited, 0, deepweb.BreakerClosed},
		{"truncation not retried, records forwarded",
			deepweb.FaultProfile{Seed: 3, Truncate: 1, TruncateFrac: 0.5}, 5, 10, deepweb.ErrTruncated, 4, deepweb.BreakerClosed},
		{"failures trip a tight breaker",
			deepweb.FaultProfile{Seed: 1, Timeout: 1, FailAttempts: 9}, 1, 2, deepweb.ErrInjectedTimeout, 0, deepweb.BreakerOpen},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			br := deepweb.NewBreaker(deepweb.BreakerConfig{FailureThreshold: tc.threshold})
			s := &deepweb.Retrying{
				S: &deepweb.Limited{
					S: &deepweb.Guarded{S: deepweb.NewFaulty(stub{n: 8, k: 8}, tc.profile), B: br},
					B: deepweb.NewBucket(1000, 1000), // generous: pacing must not interfere
				},
				Retries: tc.retries,
			}
			recs, err := s.Search(deepweb.Query{"thai"})
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("err = %v, want success", err)
				}
			} else if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if len(recs) != tc.wantRecs {
				t.Fatalf("got %d records, want %d", len(recs), tc.wantRecs)
			}
			if st := br.State(); st != tc.wantState {
				t.Fatalf("breaker state %v, want %v", st, tc.wantState)
			}
			if s.K() != 8 {
				t.Fatal("K must pass through the whole stack")
			}
		})
	}
}
