package deepweb

import (
	"context"
	"errors"
	"sync"

	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
)

// ErrCircuitOpen is returned by Guarded.Search while the breaker rejects
// traffic. It is a client-side denial: the query never reached the
// interface, so it must not be charged against the budget (see Charged).
var ErrCircuitOpen = errors.New("deepweb: circuit open")

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes traffic through, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic while the backend cools down.
	BreakerOpen
	// BreakerHalfOpen lets probe traffic through to test recovery.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// BreakerConfig shapes a Breaker. Cooldown is counted in Allow calls, not
// wall-clock: a deterministic crawl cannot depend on timers, and the crawl
// loop calls Allow once per held round, so "Cooldown rounds" is the
// natural unit there. Wrap Allow in your own timer for time-based use.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// circuit; default 5.
	FailureThreshold int
	// Cooldown is how many Allow calls are rejected while open before
	// the breaker half-opens; default 8.
	Cooldown int
	// HalfOpenProbes is how many consecutive successes in half-open
	// close the circuit again; default 1.
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 8
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// Breaker is a closed/open/half-open circuit breaker protecting a misbehaving
// interface from being hammered — every rejected call is budget and retry
// time not wasted on a backend that is down. It is a bare state machine:
// compose it with a Searcher via Guarded (concurrent use, mutex-guarded),
// or drive Allow/Record from a single goroutine (the crawl loop's merge
// stage does, which keeps breaker transitions deterministic at any worker
// count). State transitions are reported to the attached obs sink.
type Breaker struct {
	cfg BreakerConfig
	obs *obs.Obs

	mu           sync.Mutex
	state        BreakerState
	fails        int // consecutive failures while closed
	cooldownLeft int
	probeOK      int // consecutive successes while half-open
	trips        int
}

// NewBreaker returns a closed breaker (defaults applied).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// WithObs attaches an observability sink recording state transitions, and
// returns b.
func (b *Breaker) WithObs(o *obs.Obs) *Breaker {
	b.obs = o
	return b
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the circuit has opened.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// transitionLocked moves to next, reporting the change. Callers hold mu.
func (b *Breaker) transitionLocked(next BreakerState) {
	if b.state == next {
		return
	}
	from := b.state
	b.state = next
	if next == BreakerOpen {
		b.trips++
		b.cooldownLeft = b.cfg.Cooldown
	}
	b.obs.BreakerTransition(from.String(), next.String(), b.fails)
}

// Allow reports whether a call may proceed. While open, each rejected
// Allow advances the cooldown; the call that exhausts it half-opens the
// circuit and is admitted as the probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed, BreakerHalfOpen:
		return true
	default: // open
		b.cooldownLeft--
		if b.cooldownLeft > 0 {
			return false
		}
		b.probeOK = 0
		b.transitionLocked(BreakerHalfOpen)
		return true
	}
}

// Success records a successful call.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerHalfOpen:
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			b.fails = 0
			b.transitionLocked(BreakerClosed)
		}
	}
	// A late success from a call in flight when the circuit opened is
	// ignored: recovery is proven by probes, not stragglers.
}

// Failure records a failed call, opening the circuit at the threshold (or
// immediately from half-open: the probe failed).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.transitionLocked(BreakerOpen)
		}
	case BreakerHalfOpen:
		b.fails++
		b.transitionLocked(BreakerOpen)
	}
}

// Record classifies err as Success or Failure: interface failures trip the
// breaker, while budget exhaustion (a clean local stop), truncated results
// (data was returned), and context cancellation (the caller hung up, not
// the backend) are not evidence against the backend.
func (b *Breaker) Record(err error) {
	switch {
	case err == nil, errors.Is(err, ErrTruncated):
		b.Success()
	case errors.Is(err, ErrBudgetExhausted),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		// neutral
	default:
		b.Failure()
	}
}

// Guarded composes a Breaker with a Searcher: rejected calls fail fast
// with ErrCircuitOpen, admitted calls feed their outcome back into the
// breaker. ErrCircuitOpen is transient (the cooldown is ticking down), so
// Retrying's default classifier re-attempts it — wrap Retrying outside
// Guarded and a backoff wait doubles as breaker cooldown. Safe for
// concurrent use when the wrapped Searcher is.
type Guarded struct {
	S Searcher
	B *Breaker
}

// Search implements Searcher.
func (g *Guarded) Search(q Query) ([]*relational.Record, error) {
	return g.SearchCtx(nil, q)
}

// SearchCtx is Search with a request context forwarded past the breaker.
func (g *Guarded) SearchCtx(ctx context.Context, q Query) ([]*relational.Record, error) {
	if !g.B.Allow() {
		return nil, ErrCircuitOpen
	}
	recs, err := SearchWith(ctx, g.S, q)
	g.B.Record(err)
	return recs, err
}

// K implements Searcher.
func (g *Guarded) K() int { return g.S.K() }
