package deepweb

import "sync"

// RetryBudget is a Finagle-style retry token bucket: successes deposit a
// fractional token (the ratio), each retry withdraws a whole one, and a
// small burst allowance lets a cold start retry before the first deposit.
// Under a fault burst the bucket drains and retries are denied instead of
// amplifying into a retry storm — total attempts stay within roughly
// (1 + ratio) of dispatches plus the burst, whatever MaxAttempts says.
//
// The crawl loop drives the budget from its merge stage (a single
// goroutine), which keeps requeue decisions deterministic at any worker
// count; the bucket is nevertheless mutex-guarded so an attempt-level
// user (deepweb.Retrying's in-line retries) is safe too. It deliberately
// never reads the wall clock: tokens are earned by outcome counts, not
// by time, so a run's retry decisions replay identically.
type RetryBudget struct {
	mu     sync.Mutex
	ratio  float64 // tokens deposited per success
	burst  float64 // token cap, and the initial balance
	tokens float64
	denied int64
}

// DefaultRetryBurst is the initial/maximum token balance used by
// NewRetryBudget: enough headroom to ride out a short fault burst before
// any success has made a deposit.
const DefaultRetryBurst = 10

// NewRetryBudget returns a budget allowing roughly ratio retries per
// success (0.1 = retries may be ~10% of dispatches) with a burst-token
// cap. burst <= 0 takes DefaultRetryBurst; the bucket starts full.
func NewRetryBudget(ratio float64, burst float64) *RetryBudget {
	if burst <= 0 {
		burst = DefaultRetryBurst
	}
	return &RetryBudget{ratio: ratio, burst: burst, tokens: burst}
}

// Deposit credits one success.
func (b *RetryBudget) Deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Withdraw spends one token for a retry, reporting whether the budget
// allowed it. A denied withdrawal costs nothing.
func (b *RetryBudget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current balance.
func (b *RetryBudget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Denied returns how many withdrawals the budget has refused.
func (b *RetryBudget) Denied() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}
