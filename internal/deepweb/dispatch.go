package deepweb

import (
	"context"
	"sync"
	"time"

	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
)

// Outcome is the result of one dispatched query: the records returned by
// the searcher, or the error the attempt ended with. Index is the query's
// position in the dispatched batch, so callers can correlate outcomes with
// their own per-query state even after filtering.
type Outcome struct {
	Index   int
	Query   Query
	Records []*relational.Record
	Err     error
	// Undispatched marks a fail-fast outcome: the searcher never saw the
	// query (cancellation or deadline expiry before a worker claimed it),
	// so no budget was charged and the merge stage may return it to the
	// pool unpenalized.
	Undispatched bool
}

// Dispatcher fans a batch of queries out over a fixed-size worker pool
// against any Searcher — the in-process simulator or an HTTP client — and
// returns the outcomes in SUBMISSION order, not arrival order. That
// ordering is the determinism guarantee the concurrent crawl pipeline
// rests on: the merge stage absorbs results in selection order, so
// coverage and the issued-query log are identical for any worker count.
//
// A Dispatcher is stateless between calls and safe for concurrent use by
// multiple goroutines as long as the wrapped Searcher is (Counting, Cache,
// Limited, the simulator, and the HTTP client all are).
type Dispatcher struct {
	// S is the searcher every worker issues through.
	S Searcher
	// Workers bounds the number of goroutines per Dispatch call; values
	// below 1 (and batches of one query) run inline on the caller's
	// goroutine. The pool never exceeds the batch size.
	Workers int
	// SearchContext, when non-nil, is forwarded into every search (via
	// ContextSearcher) — the crawl's deadline budget. It is deliberately
	// separate from DispatchCtx's ctx argument: cancellation there means
	// "drain gracefully, let in-flight queries finish", while an expired
	// SearchContext means "the deadline is spent, abort in-flight work
	// too". Once it expires, unclaimed queries fail fast with its error
	// before any budget is charged.
	SearchContext context.Context
	// Timeout, when positive, bounds each individual search: the query's
	// context (derived from SearchContext, or fresh) gets this deadline,
	// so one hung round-trip cannot eat the whole crawl deadline.
	Timeout time.Duration
	// Obs, when non-nil, observes per-query round-trip latency and search
	// errors. Purely observational: outcomes are identical with or
	// without it.
	Obs *obs.Obs
}

// search issues one query, timing it into the sink when one is attached.
// The disabled path takes the nil branch and nothing else — no clock
// reads. Error classification is SearchFailed's: budget exhaustion,
// context cancellation (the query never executed — its dispatch is
// accounted by the merge stage's forfeit path, not as an interface
// error), and truncated-but-returned results do not count as failures.
func (d *Dispatcher) search(q Query) ([]*relational.Record, error) {
	ctx := d.SearchContext
	if d.Timeout > 0 {
		parent := ctx
		if parent == nil {
			parent = context.Background()
		}
		qctx, cancel := context.WithTimeout(parent, d.Timeout)
		defer cancel()
		ctx = qctx
	}
	if d.Obs == nil {
		return SearchWith(ctx, d.S, q)
	}
	start := time.Now()
	recs, err := SearchWith(ctx, d.S, q)
	d.Obs.SearchDone(time.Since(start), SearchFailed(err))
	return recs, err
}

// Dispatch issues every query of the batch and returns one Outcome per
// query, index-aligned with qs. It never returns early: a failed query
// records its error in its slot while the rest of the batch proceeds —
// budget-exhaustion and transient failures are per-query decisions the
// merge stage makes, not reasons to drop completed work.
func (d *Dispatcher) Dispatch(qs []Query) []Outcome {
	return d.DispatchCtx(nil, qs)
}

// DispatchCtx is Dispatch with drain semantics under cancellation: once
// ctx is cancelled, queries not yet claimed by a worker fail fast with
// ctx.Err() — before the searcher sees them, so a budget-counting wrapper
// never charges them — while queries already in flight run to completion
// and keep their results. DispatchCtx always returns the full outcome
// slice; it never abandons started work, because a charged query whose
// result is thrown away is a quota unit lost forever. A nil ctx behaves
// exactly like Dispatch. An expired SearchContext (the deadline budget)
// fails unclaimed queries fast the same way.
func (d *Dispatcher) DispatchCtx(ctx context.Context, qs []Query) []Outcome {
	out := make([]Outcome, len(qs))
	if len(qs) == 0 {
		return out
	}
	cancelled := func() error {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if d.SearchContext != nil {
			if err := d.SearchContext.Err(); err != nil {
				return err
			}
		}
		return nil
	}
	workers := d.Workers
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		for i, q := range qs {
			if err := cancelled(); err != nil {
				out[i] = Outcome{Index: i, Query: q, Err: err, Undispatched: true}
				continue
			}
			recs, err := d.search(q)
			out[i] = Outcome{Index: i, Query: q, Records: recs, Err: err}
		}
		return out
	}
	// Each worker claims indexes from a shared channel and writes only to
	// its claimed slots, so the outcome slice needs no locking.
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := cancelled(); err != nil {
					out[i] = Outcome{Index: i, Query: qs[i], Err: err, Undispatched: true}
					continue
				}
				recs, err := d.search(qs[i])
				out[i] = Outcome{Index: i, Query: qs[i], Records: recs, Err: err}
			}
		}()
	}
	for i := range qs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
