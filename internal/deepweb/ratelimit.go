package deepweb

import (
	"context"
	"errors"
	"sync"
	"time"

	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
)

// ErrRateLimited is returned by Limited.Search when the token bucket has
// no token for the request — the client-side equivalent of an HTTP 429.
// It is transient by definition: Retrying's default classifier re-attempts
// it, and the bucket refills while the backoff waits.
var ErrRateLimited = errors.New("deepweb: rate limited")

// Bucket is a thread-safe token-bucket rate limiter for client-side
// pacing: capacity tokens, refilled continuously at a per-second rate.
// Unlike the server-side httpapi.TokenBucket (which models the remote
// quota), Bucket sits in front of a Searcher so a concurrent crawl
// pipeline never exceeds the polite request rate in the first place —
// fanning a batch over N workers multiplies instantaneous load by N, and
// real APIs ban clients for that.
type Bucket struct {
	mu       sync.Mutex
	tokens   float64
	capacity float64
	perSec   float64
	last     time.Time
	now      func() time.Time
}

// NewBucket creates a bucket holding capacity tokens, refilled at
// refillPerSec tokens/second. It starts full.
func NewBucket(capacity int, refillPerSec float64) *Bucket {
	b := &Bucket{
		tokens:   float64(capacity),
		capacity: float64(capacity),
		perSec:   refillPerSec,
		now:      time.Now,
	}
	b.last = b.now()
	return b
}

// WithClock replaces the bucket's time source (tests inject a fake clock
// to step refills deterministically) and returns the bucket.
func (b *Bucket) WithClock(now func() time.Time) *Bucket {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
	b.last = now()
	return b
}

// refillLocked advances the token count to the current time. Callers hold mu.
func (b *Bucket) refillLocked() {
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.perSec
	b.last = now
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
}

// Allow consumes one token if available, without blocking.
func (b *Bucket) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current token count (after refill) — observability
// for tests and stats endpoints.
func (b *Bucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	return b.tokens
}

// Limited wraps a Searcher with a client-side token bucket. A request with
// no token fails fast with ErrRateLimited instead of reaching the backend;
// compose with Retrying (outside) to wait out the refill with backoff, and
// with Counting to decide whether throttled attempts should be charged
// (outside: free; inside: charged, like real quota meters). Safe for
// concurrent use when the wrapped Searcher is.
type Limited struct {
	S Searcher
	B *Bucket
	// Obs, when non-nil, records every denial (with the bucket's token
	// level) into the observability sink — the rate-limit-pressure signal
	// for tuning worker counts against polite request rates.
	Obs *obs.Obs
}

// Search implements Searcher.
func (l *Limited) Search(q Query) ([]*relational.Record, error) {
	return l.SearchCtx(nil, q)
}

// SearchCtx is Search with a request context forwarded past the bucket.
func (l *Limited) SearchCtx(ctx context.Context, q Query) ([]*relational.Record, error) {
	if !l.B.Allow() {
		if l.Obs != nil {
			l.Obs.RateLimitDenied(q.Key(), l.B.Tokens())
		}
		return nil, ErrRateLimited
	}
	return SearchWith(ctx, l.S, q)
}

// K implements Searcher.
func (l *Limited) K() int { return l.S.K() }

// Delayed wraps a Searcher, sleeping Delay before forwarding every call —
// injected network round-trip latency for wall-clock experiments and the
// parallel-crawl benchmarks. Safe for concurrent use when the wrapped
// Searcher is; concurrent callers sleep independently, which is exactly
// the overlap the dispatcher exists to exploit.
type Delayed struct {
	S     Searcher
	Delay time.Duration
}

// Search implements Searcher.
func (d *Delayed) Search(q Query) ([]*relational.Record, error) {
	return d.SearchCtx(nil, q)
}

// SearchCtx is Search whose injected delay respects the context: a
// deadline or cancellation that fires mid-sleep ends the call with the
// context's error, exactly as a real network round-trip would.
func (d *Delayed) SearchCtx(ctx context.Context, q Query) ([]*relational.Record, error) {
	if d.Delay > 0 {
		if ctx == nil {
			time.Sleep(d.Delay)
		} else {
			t := time.NewTimer(d.Delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}
	}
	return SearchWith(ctx, d.S, q)
}

// K implements Searcher.
func (d *Delayed) K() int { return d.S.K() }
