package deepweb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
)

// The paper's setting is an adversarial interface: a remote top-k keyword
// API that rate-limits, times out, and silently truncates (§2, §6). Faulty
// wraps any Searcher with deterministic, seedable injection of exactly
// those misbehaviours, so the crawl loop's coverage guarantees can be
// tested — and regression-pinned — under interface failure. Every fault
// decision is a pure hash of (seed, query key, attempt number), never of
// arrival order, which is what makes fault replay deterministic: the same
// seed and profile produce the same per-query fault schedule at any
// worker count.

// FaultClass names one injected misbehaviour.
type FaultClass string

const (
	// FaultTimeout simulates a request that never completes: the attempt
	// fails with ErrInjectedTimeout (after Latency, when configured).
	FaultTimeout FaultClass = "timeout"
	// FaultUnavailable simulates a transient server error (HTTP 5xx).
	FaultUnavailable FaultClass = "unavailable"
	// FaultRateLimit simulates a burst of server-side 429 rejections:
	// the first BurstLen attempts fail with ErrRateLimited.
	FaultRateLimit FaultClass = "rate_limit"
	// FaultTruncate shortens the result page: the wrapped result is cut
	// to TruncateFrac of its records and returned with a TruncatedError
	// carrying the true size.
	FaultTruncate FaultClass = "truncate"
	// FaultStale serves results from an older snapshot: a deterministic
	// per-record subset of the result is silently omitted. The caller
	// cannot detect this fault — that is the point.
	FaultStale FaultClass = "stale"
)

// ErrInjectedTimeout marks a fault-injected request timeout.
var ErrInjectedTimeout = errors.New("deepweb: injected timeout")

// ErrUnavailable marks a fault-injected transient server error (5xx).
var ErrUnavailable = errors.New("deepweb: service unavailable")

// ErrTruncated is the sentinel wrapped by every TruncatedError, so
// callers can classify with errors.Is without unpacking the type.
var ErrTruncated = errors.New("deepweb: truncated result")

// TruncatedError reports a short result page: Search returned Returned
// records alongside this error, but the interface actually matched Full.
// Callers unaware of truncation see an error and fail safe (they do not
// mistake a cut page for a solid result); resilience-aware callers
// errors.As the type, absorb the partial records, and use Full for
// solidity decisions. Retrying does not re-attempt it — the records are
// already in hand.
type TruncatedError struct {
	Full     int // records the interface matched
	Returned int // records actually returned
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("deepweb: result truncated to %d of %d records", e.Returned, e.Full)
}

func (e *TruncatedError) Unwrap() error { return ErrTruncated }

// FaultProfile configures a Faulty wrapper: one probability per fault
// class (at most one class is assigned per query, by cumulative walk over
// a per-query hash) plus the shape parameters of each class. The zero
// profile injects nothing.
type FaultProfile struct {
	// Seed drives every fault decision. Two Faulty wrappers with equal
	// seeds and profiles inject identical fault schedules.
	Seed uint64
	// Per-class probabilities; their sum must be ≤ 1.
	Timeout     float64
	Unavailable float64
	RateLimit   float64
	Truncate    float64
	Stale       float64
	// FailAttempts is how many attempts of a timeout/unavailable query
	// fail before the fault clears (a transient outage); default 2.
	FailAttempts int
	// BurstLen is how many attempts of a rate-limited query are rejected
	// before the burst passes; default 3.
	BurstLen int
	// TruncateFrac is the fraction of the page kept on truncation;
	// default 0.5.
	TruncateFrac float64
	// StaleFrac is the fraction of hidden records visible to stale
	// queries; default 0.75.
	StaleFrac float64
	// Latency, when > 0, delays every faulted attempt — wall-clock
	// realism for timeout experiments. Keep 0 in tests.
	Latency time.Duration
}

// TransientRate is the summed probability of the transient fault classes
// (timeout, unavailable, rate-limit) — the knob the graceful-degradation
// acceptance bar is stated against.
func (p FaultProfile) TransientRate() float64 { return p.Timeout + p.Unavailable + p.RateLimit }

// Total is the probability that a query draws any fault class.
func (p FaultProfile) Total() float64 {
	return p.Timeout + p.Unavailable + p.RateLimit + p.Truncate + p.Stale
}

// withDefaults fills the shape parameters left zero.
func (p FaultProfile) withDefaults() FaultProfile {
	if p.FailAttempts <= 0 {
		p.FailAttempts = 2
	}
	if p.BurstLen <= 0 {
		p.BurstLen = 3
	}
	if p.TruncateFrac <= 0 {
		p.TruncateFrac = 0.5
	}
	if p.StaleFrac <= 0 {
		p.StaleFrac = 0.75
	}
	return p
}

// faultPresets are the named profiles accepted by ParseFaultProfile and
// the CLI -faults flags. "transient10" is the acceptance profile: a 10%
// transient-fault rate with no response shaping.
var faultPresets = map[string]FaultProfile{
	"none": {},
	"mild": {Timeout: 0.02, Unavailable: 0.02, RateLimit: 0.01,
		Truncate: 0.02, Stale: 0.01},
	"moderate": {Timeout: 0.04, Unavailable: 0.04, RateLimit: 0.02,
		Truncate: 0.05, Stale: 0.03},
	"severe": {Timeout: 0.08, Unavailable: 0.08, RateLimit: 0.05,
		Truncate: 0.10, Stale: 0.05, FailAttempts: 3},
	"transient10": {Timeout: 0.05, Unavailable: 0.03, RateLimit: 0.02},
}

// FaultPresetNames lists the named profiles, sorted — for flag usage text.
func FaultPresetNames() []string {
	names := make([]string, 0, len(faultPresets))
	for n := range faultPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseFaultProfile turns a CLI spec into a profile: either a preset name
// (none, mild, moderate, severe, transient10) or a comma-separated list of
// class=probability pairs plus shape overrides, e.g.
//
//	"timeout=0.05,truncate=0.1,truncate-frac=0.3,attempts=3"
//
// Recognized keys: timeout, unavailable, ratelimit, truncate, stale
// (probabilities in [0,1]); attempts, burst (ints); truncate-frac,
// stale-frac (fractions). The seed is set separately (it is a replay
// handle, not part of the failure model).
func ParseFaultProfile(spec string) (FaultProfile, error) {
	if p, ok := faultPresets[strings.ToLower(strings.TrimSpace(spec))]; ok {
		return p, nil
	}
	var p FaultProfile
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return p, fmt.Errorf("deepweb: fault spec %q: want key=value or a preset (%s)",
				part, strings.Join(FaultPresetNames(), "|"))
		}
		f, ferr := strconv.ParseFloat(val, 64)
		if ferr == nil && !(f >= 0 && f <= math.MaxFloat64) {
			// strconv accepts NaN/Inf/negatives; none is a probability
			// or a fraction, and NaN would slip past the sum check.
			ferr = fmt.Errorf("value %v out of range", f)
		}
		n, nerr := strconv.Atoi(val)
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "timeout":
			p.Timeout = f
		case "unavailable":
			p.Unavailable = f
		case "ratelimit", "rate-limit":
			p.RateLimit = f
		case "truncate":
			p.Truncate = f
		case "stale":
			p.Stale = f
		case "truncate-frac":
			p.TruncateFrac = f
		case "stale-frac":
			p.StaleFrac = f
		case "attempts":
			ferr = nerr
			p.FailAttempts = n
		case "burst":
			ferr = nerr
			p.BurstLen = n
		default:
			return p, fmt.Errorf("deepweb: fault spec: unknown key %q", key)
		}
		if ferr != nil {
			return p, fmt.Errorf("deepweb: fault spec %q: %v", part, ferr)
		}
	}
	if t := p.Total(); t > 1 {
		return p, fmt.Errorf("deepweb: fault probabilities sum to %.3f > 1", t)
	}
	return p, nil
}

// Faulty wraps a Searcher with deterministic fault injection per
// FaultProfile. Which class (if any) a query draws is a pure function of
// (seed, query key); how an attempt of that query behaves depends only on
// the per-query attempt number, counted inside the wrapper — so the fault
// schedule is independent of worker scheduling, and a crawl over a Faulty
// backend replays byte-identically from its seed. Safe for concurrent use
// when the wrapped Searcher is.
type Faulty struct {
	S Searcher
	P FaultProfile

	obs *obs.Obs

	mu       sync.Mutex
	attempts map[string]int
	injected map[FaultClass]int
}

// NewFaulty wraps s with the profile (shape defaults applied).
func NewFaulty(s Searcher, p FaultProfile) *Faulty {
	return &Faulty{
		S:        s,
		P:        p.withDefaults(),
		attempts: make(map[string]int),
		injected: make(map[FaultClass]int),
	}
}

// WithObs attaches an observability sink recording every injected fault,
// and returns f.
func (f *Faulty) WithObs(o *obs.Obs) *Faulty {
	f.obs = o
	return f
}

// Injected returns a copy of the per-class injection counts so far.
func (f *Faulty) Injected() map[FaultClass]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[FaultClass]int, len(f.injected))
	for c, n := range f.injected {
		out[c] = n
	}
	return out
}

// classOf assigns q its fault class (or "" for none) by cumulative walk
// over a seeded per-query hash.
func (f *Faulty) classOf(key string) FaultClass {
	u := unitFloat(hashString(f.P.Seed, "class", key))
	for _, c := range []struct {
		class FaultClass
		p     float64
	}{
		{FaultTimeout, f.P.Timeout},
		{FaultUnavailable, f.P.Unavailable},
		{FaultRateLimit, f.P.RateLimit},
		{FaultTruncate, f.P.Truncate},
		{FaultStale, f.P.Stale},
	} {
		if u < c.p {
			return c.class
		}
		u -= c.p
	}
	return ""
}

// inject records one injected fault (counter + obs hook). Callers hold mu.
func (f *Faulty) injectLocked(key string, class FaultClass, attempt int) {
	f.injected[class]++
	f.obs.FaultInjected(key, string(class), attempt)
}

// Search implements Searcher, misbehaving per the profile.
func (f *Faulty) Search(q Query) ([]*relational.Record, error) {
	return f.SearchCtx(nil, q)
}

// SearchCtx is Search with a request context forwarded past the
// injector; the fault schedule itself is context-blind (it depends only
// on the seed, the query key, and the attempt count).
func (f *Faulty) SearchCtx(ctx context.Context, q Query) ([]*relational.Record, error) {
	key := q.Key()
	class := f.classOf(key)
	if class == "" {
		return SearchWith(ctx, f.S, q)
	}

	f.mu.Lock()
	f.attempts[key]++
	attempt := f.attempts[key]
	switch class {
	case FaultTimeout:
		if attempt <= f.P.FailAttempts {
			f.injectLocked(key, class, attempt)
			f.mu.Unlock()
			if f.P.Latency > 0 {
				time.Sleep(f.P.Latency)
			}
			return nil, fmt.Errorf("deepweb: %q attempt %d: %w", key, attempt, ErrInjectedTimeout)
		}
	case FaultUnavailable:
		if attempt <= f.P.FailAttempts {
			f.injectLocked(key, class, attempt)
			f.mu.Unlock()
			if f.P.Latency > 0 {
				time.Sleep(f.P.Latency)
			}
			return nil, fmt.Errorf("deepweb: %q attempt %d: %w", key, attempt, ErrUnavailable)
		}
	case FaultRateLimit:
		if attempt <= f.P.BurstLen {
			f.injectLocked(key, class, attempt)
			f.mu.Unlock()
			return nil, fmt.Errorf("deepweb: %q attempt %d: injected burst: %w", key, attempt, ErrRateLimited)
		}
	}
	f.mu.Unlock()

	recs, err := SearchWith(ctx, f.S, q)
	if err != nil {
		return recs, err
	}
	switch class {
	case FaultTruncate:
		m := int(float64(len(recs)) * f.P.TruncateFrac)
		if m >= len(recs) {
			return recs, nil
		}
		f.mu.Lock()
		f.injectLocked(key, class, attempt)
		f.mu.Unlock()
		return recs[:m:m], &TruncatedError{Full: len(recs), Returned: m}
	case FaultStale:
		kept := recs[:0:0]
		for _, r := range recs {
			// Record visibility is keyed per record, not per query, so
			// every stale query agrees on which records are "recent".
			if unitFloat(hashString(f.P.Seed, "stale", strconv.Itoa(r.ID))) < f.P.StaleFrac {
				kept = append(kept, r)
			}
		}
		if len(kept) < len(recs) {
			f.mu.Lock()
			f.injectLocked(key, class, attempt)
			f.mu.Unlock()
		}
		return kept, nil
	}
	return recs, nil
}

// K implements Searcher.
func (f *Faulty) K() int { return f.S.K() }

// Charged reports whether a failed Search was charged by the interface.
// Client-side denials (token-bucket rejections, an open circuit), 429
// rejections, and context cancellations never executed server-side — real
// quota meters do not bill them, so a budgeted crawl refunds their unit
// (Counting.Refund) when it gives up on the attempt.
func Charged(err error) bool {
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrRateLimited),
		errors.Is(err, ErrCircuitOpen),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	}
	return true
}

// SearchFailed classifies err for the interface-error counter: budget
// exhaustion is a clean local stop, a cancelled context means the query
// never executed, and a truncated result did return data — none of them
// are interface failures.
func SearchFailed(err error) bool {
	return err != nil &&
		!errors.Is(err, ErrBudgetExhausted) &&
		!errors.Is(err, ErrTruncated) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// hashString is a seeded FNV-1a over salt+key, finalized with a
// splitmix64 mix so nearby inputs land far apart.
func hashString(seed uint64, salt, key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(salt); i++ {
		h = (h ^ uint64(salt[i])) * prime
	}
	h = (h ^ '/') * prime
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime
	}
	return mix64(h ^ seed)
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 { return float64(h>>11) / float64(1<<53) }
