// Package deepweb defines the restricted access interface through which all
// crawlers see a hidden database (§2, Definition 2): a keyword query goes
// in, at most k records come out, and nothing else about H is observable.
// Around that interface it layers everything a production crawl needs to
// survive a real web API: budget accounting that charges every issued
// query and refunds never-executed ones (Counting, mirroring the per-day
// quotas — Yelp: 25,000 requests/day, Google Maps: 2,500/day — that
// motivate the paper's budget b), memoization (Cache), a worker-pool
// dispatcher with deterministic in-order outcomes (Dispatcher), retry with
// backoff (Retrying), client-side token-bucket pacing (Limited), a
// closed/open/half-open circuit breaker (Breaker, Guarded), and a
// deterministic seedable fault injector (Faulty) that misbehaves exactly
// like the adversarial interfaces of §2/§6 — timeouts, 5xx bursts, 429
// storms, truncated and stale result pages — so resilience is testable.
package deepweb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"smartcrawl/internal/relational"
)

// Query is a conjunctive keyword query: a set of normalized (lowercase,
// deduplicated) keywords. Order is not semantically meaningful, but
// canonical (sorted) order is used for map keys.
type Query []string

// Key returns a canonical string form usable as a map key. Callers must
// pass normalized queries (see tokenize.NormalizeQuery).
func (q Query) Key() string { return strings.Join(q, " ") }

// String renders the query as the user would type it.
func (q Query) String() string { return strings.Join(q, " ") }

// Searcher is the only capability a crawler has against a hidden database.
// Search returns the top-k records matching q under the database's unknown
// ranking function; it must be deterministic (§2: repeated execution returns
// the same result). Implementations must NOT reveal |q(H)| or whether the
// query overflowed — crawlers infer solidity from len(result) < K()
// exactly as a client of a real web API would.
type Searcher interface {
	Search(q Query) ([]*relational.Record, error)
	// K returns the interface's top-k result limit.
	K() int
}

// ErrBudgetExhausted is returned by Counting.Search once the configured
// query budget has been spent.
var ErrBudgetExhausted = errors.New("deepweb: query budget exhausted")

// ContextSearcher is implemented by searchers that can honor a request
// context — deadline budgets and per-query timeouts propagate through
// the wrapper stack (Counting, Limited, Retrying, Guarded, Faulty,
// httpapi.Client) via this interface. Wrappers forward the context with
// SearchWith, so a stack with a context-blind layer in the middle simply
// degrades to Search below that point.
type ContextSearcher interface {
	Searcher
	SearchCtx(ctx context.Context, q Query) ([]*relational.Record, error)
}

// SearchWith issues q through s, using SearchCtx when s supports it and
// ctx is non-nil. This is how every wrapper forwards its context without
// caring what sits below it.
func SearchWith(ctx context.Context, s Searcher, q Query) ([]*relational.Record, error) {
	if ctx != nil {
		if cs, ok := s.(ContextSearcher); ok {
			return cs.SearchCtx(ctx, q)
		}
	}
	return s.Search(q)
}

// RetryAfterError wraps a retryable failure with a server-provided
// backoff hint (an HTTP 429's Retry-After header, surfaced by
// httpapi.Client). Retrying prefers the hint over its own backoff
// schedule; everything else unwraps through it (Charged still sees the
// underlying ErrRateLimited).
type RetryAfterError struct {
	After time.Duration
	Err   error
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.After)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *RetryAfterError) Unwrap() error { return e.Err }

// Budget is a shared query-quota meter. A single-interface crawl owns one
// implicitly through NewCounting; a federated crawl creates one Budget and
// attaches a Counting per interface to it (NewCountingOn), so every
// interface charges the SAME global allowance — the paper's b is a total
// across sources, not per source. A limit of zero or negative means
// unlimited. Safe for concurrent use.
type Budget struct {
	mu     sync.Mutex
	limit  int
	issued int
}

// NewBudget returns a meter with a limit of b queries (b <= 0 = unlimited).
func NewBudget(b int) *Budget { return &Budget{limit: b} }

// Charge consumes one unit, reporting false (and consuming nothing) once
// the limit is spent.
func (b *Budget) Charge() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limit > 0 && b.issued >= b.limit {
		return false
	}
	b.issued++
	return true
}

// Refund returns one previously charged unit (floor at zero).
func (b *Budget) Refund() {
	b.mu.Lock()
	if b.issued > 0 {
		b.issued--
	}
	b.mu.Unlock()
}

// Issued returns the number of units charged so far.
func (b *Budget) Issued() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.issued
}

// Limit returns the configured limit (<= 0 = unlimited).
func (b *Budget) Limit() int { return b.limit }

// Remaining returns how many units are left, or -1 if unlimited.
func (b *Budget) Remaining() int {
	if b.limit <= 0 {
		return -1
	}
	r := b.limit - b.Issued()
	if r < 0 {
		r = 0
	}
	return r
}

// Exhausted reports whether the limit has been fully spent.
func (b *Budget) Exhausted() bool {
	return b.limit > 0 && b.Issued() >= b.limit
}

// Counting wraps a Searcher with budget accounting. Every Search call —
// successful or not — consumes one unit, matching how web APIs meter
// requests. The meter may be private (NewCounting) or shared across several
// Counting wrappers (NewCountingOn), which is how a federated crawl spends
// one global budget through n interfaces. Counting is safe for concurrent
// use (batch crawling issues queries from multiple goroutines); the wrapped
// Searcher must be too.
type Counting struct {
	S Searcher
	B *Budget
}

// NewCounting wraps s with its own budget of b queries (b <= 0 = unlimited).
func NewCounting(s Searcher, b int) *Counting {
	return &Counting{S: s, B: NewBudget(b)}
}

// NewCountingOn wraps s charging against the shared meter b.
func NewCountingOn(s Searcher, b *Budget) *Counting {
	return &Counting{S: s, B: b}
}

// Search issues q through the wrapped searcher, charging one query.
func (c *Counting) Search(q Query) ([]*relational.Record, error) {
	return c.SearchCtx(nil, q)
}

// SearchCtx is Search with a request context forwarded down the stack.
func (c *Counting) SearchCtx(ctx context.Context, q Query) ([]*relational.Record, error) {
	if !c.B.Charge() {
		return nil, ErrBudgetExhausted
	}
	return SearchWith(ctx, c.S, q)
}

// K returns the wrapped interface's result limit.
func (c *Counting) K() int { return c.S.K() }

// Refund returns one previously charged unit. The graceful-degradation
// path calls it when it gives up on a query whose failure the interface
// never billed — a client-side token-bucket denial, an open circuit, a
// 429 rejection, a context cancellation before dispatch (see Charged).
// A query that never executed must not consume budget.
func (c *Counting) Refund() { c.B.Refund() }

// Issued returns the number of queries charged so far on the meter.
func (c *Counting) Issued() int { return c.B.Issued() }

// Remaining returns how many queries are left, or -1 if unlimited.
func (c *Counting) Remaining() int { return c.B.Remaining() }

// Exhausted reports whether the budget has been fully spent.
func (c *Counting) Exhausted() bool { return c.B.Exhausted() }

// Cache memoizes Search results by query key. Query processing is
// deterministic (§2), so re-issuing a query wastes budget for no new
// information. Strategies that may legitimately re-select a query
// (QSel-Bound keeps selected queries in the pool) pay budget per the
// algorithm; wrap their searcher in Cache to study the same selection with
// re-issues de-duplicated. Safe for concurrent use (batch crawling); a
// cache miss may issue the same query more than once under races, which
// only costs budget, never correctness (results are deterministic).
type Cache struct {
	S Searcher

	mu      sync.Mutex
	results map[string][]*relational.Record
	hits    int
	misses  int
}

// NewCache wraps s with memoization.
func NewCache(s Searcher) *Cache {
	return &Cache{S: s, results: make(map[string][]*relational.Record)}
}

// Search returns the cached result if q was issued before, otherwise
// forwards to the wrapped searcher.
func (c *Cache) Search(q Query) ([]*relational.Record, error) {
	return c.SearchCtx(nil, q)
}

// SearchCtx is Search with a request context forwarded on cache misses.
func (c *Cache) SearchCtx(ctx context.Context, q Query) ([]*relational.Record, error) {
	key := q.Key()
	c.mu.Lock()
	if r, ok := c.results[key]; ok {
		c.hits++
		c.mu.Unlock()
		return r, nil
	}
	c.mu.Unlock()
	r, err := SearchWith(ctx, c.S, q)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.misses++
	c.results[key] = r
	c.mu.Unlock()
	return r, nil
}

// Stats returns cache hits and misses so far.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// K returns the wrapped interface's result limit.
func (c *Cache) K() int { return c.S.K() }

// Validate checks that q is well-formed for issuing: non-empty, normalized
// (sorted, unique, lowercase). The hidden-database simulator rejects
// malformed queries loudly instead of silently returning empty results.
func Validate(q Query) error {
	if len(q) == 0 {
		return errors.New("deepweb: empty query")
	}
	for i, w := range q {
		if w == "" {
			return errors.New("deepweb: empty keyword")
		}
		if w != strings.ToLower(w) {
			return fmt.Errorf("deepweb: keyword %q not lowercase", w)
		}
		if i > 0 && q[i-1] >= w {
			return fmt.Errorf("deepweb: query not sorted/unique at %q", w)
		}
	}
	return nil
}
