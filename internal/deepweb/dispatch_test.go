package deepweb_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/fixture"
	"smartcrawl/internal/obs"
	"smartcrawl/internal/relational"
)

// echoSearcher returns one synthetic record per query, recording
// concurrency so tests can assert pool bounds.
type echoSearcher struct {
	inFlight    int64
	maxInFlight int64
	calls       int64
	fail        func(q deepweb.Query) error
	block       chan struct{} // non-nil: Search parks here until closed
}

func (e *echoSearcher) Search(q deepweb.Query) ([]*relational.Record, error) {
	cur := atomic.AddInt64(&e.inFlight, 1)
	defer atomic.AddInt64(&e.inFlight, -1)
	for {
		max := atomic.LoadInt64(&e.maxInFlight)
		if cur <= max || atomic.CompareAndSwapInt64(&e.maxInFlight, max, cur) {
			break
		}
	}
	atomic.AddInt64(&e.calls, 1)
	if e.block != nil {
		<-e.block
	}
	if e.fail != nil {
		if err := e.fail(q); err != nil {
			return nil, err
		}
	}
	return []*relational.Record{{ID: len(q), Values: []string{q.Key()}}}, nil
}

func (e *echoSearcher) K() int { return 2 }

func queries(n int) []deepweb.Query {
	qs := make([]deepweb.Query, n)
	for i := range qs {
		qs[i] = deepweb.Query{fmt.Sprintf("kw%03d", i)}
	}
	return qs
}

func TestDispatchPreservesSubmissionOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		d := &deepweb.Dispatcher{S: &echoSearcher{}, Workers: workers}
		qs := queries(25)
		outs := d.Dispatch(qs)
		if len(outs) != len(qs) {
			t.Fatalf("workers=%d: %d outcomes for %d queries", workers, len(outs), len(qs))
		}
		for i, o := range outs {
			if o.Index != i {
				t.Fatalf("workers=%d: outcome %d has index %d", workers, i, o.Index)
			}
			if o.Query.Key() != qs[i].Key() {
				t.Fatalf("workers=%d: outcome %d is for %q, want %q", workers, i, o.Query, qs[i])
			}
			if o.Err != nil || len(o.Records) != 1 || o.Records[0].Values[0] != qs[i].Key() {
				t.Fatalf("workers=%d: outcome %d = %+v", workers, i, o)
			}
		}
	}
}

func TestDispatchBoundsWorkerPool(t *testing.T) {
	e := &echoSearcher{}
	d := &deepweb.Dispatcher{S: e, Workers: 4}
	d.Dispatch(queries(64))
	if e.maxInFlight > 4 {
		t.Fatalf("observed %d concurrent searches, want <= 4", e.maxInFlight)
	}
	if e.calls != 64 {
		t.Fatalf("calls = %d, want 64", e.calls)
	}
}

func TestDispatchActuallyOverlaps(t *testing.T) {
	// With 4 workers and a searcher that parks until all 4 have arrived,
	// the batch can only finish if the dispatcher truly runs them
	// concurrently.
	block := make(chan struct{})
	e := &echoSearcher{block: block}
	d := &deepweb.Dispatcher{S: e, Workers: 4}
	done := make(chan []deepweb.Outcome)
	go func() { done <- d.Dispatch(queries(4)) }()
	for atomic.LoadInt64(&e.inFlight) < 4 {
		runtime.Gosched() // until all four workers are parked in Search
	}
	close(block)
	outs := <-done
	if len(outs) != 4 {
		t.Fatalf("got %d outcomes", len(outs))
	}
}

func TestDispatchRecordsPerQueryErrors(t *testing.T) {
	boom := errors.New("boom")
	e := &echoSearcher{fail: func(q deepweb.Query) error {
		if q.Key() == "kw003" {
			return boom
		}
		return nil
	}}
	d := &deepweb.Dispatcher{S: e, Workers: 4}
	outs := d.Dispatch(queries(8))
	for i, o := range outs {
		if i == 3 {
			if !errors.Is(o.Err, boom) {
				t.Fatalf("outcome 3 err = %v, want boom", o.Err)
			}
			continue
		}
		if o.Err != nil {
			t.Fatalf("outcome %d unexpectedly failed: %v", i, o.Err)
		}
	}
}

func TestDispatchEmptyBatch(t *testing.T) {
	d := &deepweb.Dispatcher{S: &echoSearcher{}, Workers: 8}
	if outs := d.Dispatch(nil); len(outs) != 0 {
		t.Fatalf("empty batch produced %d outcomes", len(outs))
	}
}

// TestDispatchDeterministicThroughBudget proves the pipeline's budget
// interplay: a Counting wrapper shared by all workers charges exactly one
// unit per dispatched query, independent of worker count and scheduling.
func TestDispatchDeterministicThroughBudget(t *testing.T) {
	u := fixture.New()
	for _, workers := range []int{1, 2, 8} {
		counting := deepweb.NewCounting(u.DB, 0)
		d := &deepweb.Dispatcher{S: counting, Workers: workers}
		qs := []deepweb.Query{{"thai"}, {"house"}, {"noodle"}, {"bbq"}}
		ref := make([][]string, len(qs))
		for i, q := range qs {
			recs, err := u.DB.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				ref[i] = append(ref[i], r.Values[0])
			}
		}
		outs := d.Dispatch(qs)
		if counting.Issued() != len(qs) {
			t.Fatalf("workers=%d: issued %d, want %d", workers, counting.Issued(), len(qs))
		}
		for i, o := range outs {
			var got []string
			for _, r := range o.Records {
				got = append(got, r.Values[0])
			}
			if !reflect.DeepEqual(got, ref[i]) {
				t.Fatalf("workers=%d: query %d returned %v, want %v", workers, i, got, ref[i])
			}
		}
	}
}

// TestDispatchCancelledQueryNotCountedAsError: a context-cancelled
// in-flight query is the caller hanging up, not an interface failure — it
// must not inflate the SearchErrors metric (a genuine failure must).
func TestDispatchCancelledQueryNotCountedAsError(t *testing.T) {
	o := obs.New()
	e := &echoSearcher{fail: func(q deepweb.Query) error {
		switch q.Key() {
		case "kw001":
			return fmt.Errorf("dial: %w", context.Canceled)
		case "kw002":
			return errors.New("http 500")
		}
		return nil
	}}
	d := &deepweb.Dispatcher{S: e, Workers: 2, Obs: o}
	d.Dispatch(queries(4))
	if got := o.SearchErrors.Value(); got != 1 {
		t.Fatalf("SearchErrors = %d, want 1 (only the genuine failure)", got)
	}
}

// TestDispatcherSafeForConcurrentCallers: several goroutines sharing one
// Dispatcher (and one searcher chain) must not interfere — each caller
// gets its own index-aligned outcome slice.
func TestDispatcherSafeForConcurrentCallers(t *testing.T) {
	d := &deepweb.Dispatcher{S: deepweb.NewCache(&echoSearcher{}), Workers: 4}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qs := queries(16)
			for round := 0; round < 10; round++ {
				outs := d.Dispatch(qs)
				for i, o := range outs {
					if o.Err != nil || o.Records[0].Values[0] != qs[i].Key() {
						t.Errorf("outcome %d corrupted: %+v", i, o)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
