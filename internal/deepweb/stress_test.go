package deepweb_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/fixture"
)

// TestStressDispatcherPipeline hammers the full concurrent-crawl searcher
// chain — Retrying(Limited(Cache(Counting(simulator)))) — through the
// dispatcher from 64 goroutines at once. It exists to run under
// `go test -race` (the Makefile `race` tier): the assertions are
// deliberately coarse; the race detector is the real oracle for the
// single-writer/shared-reader discipline of every layer.
func TestStressDispatcherPipeline(t *testing.T) {
	u := fixture.New()
	counting := deepweb.NewCounting(u.DB, 0)
	chain := &deepweb.Retrying{
		S: &deepweb.Limited{
			S: deepweb.NewCache(counting),
			// Generous refill so the stress run is throttled sometimes
			// but never starves.
			B: deepweb.NewBucket(256, 1e6),
		},
		Retries: 8,
		Backoff: deepweb.ExponentialBackoff(time.Microsecond, 50*time.Microsecond),
	}
	d := &deepweb.Dispatcher{S: chain, Workers: 8}

	const goroutines = 64
	const rounds = 20
	keywords := []string{"thai", "house", "noodle", "bbq", "seafood", "garden", "golden", "palace"}
	var searches int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qs := make([]deepweb.Query, 0, len(keywords))
				for i := range keywords {
					qs = append(qs, deepweb.Query{keywords[(g+r+i)%len(keywords)]})
				}
				for i, o := range d.Dispatch(qs) {
					if o.Err != nil {
						t.Errorf("goroutine %d round %d query %d: %v", g, r, i, o.Err)
						return
					}
					atomic.AddInt64(&searches, 1)
				}
			}
		}(g)
	}
	wg.Wait()
	if want := int64(goroutines * rounds * len(keywords)); searches != want {
		t.Fatalf("completed %d searches, want %d", searches, want)
	}
}

// TestStressBucket hits one bucket from 64 goroutines and checks global
// token accounting: the total number of admitted requests can never exceed
// capacity plus what the elapsed wall-clock could have refilled.
func TestStressBucket(t *testing.T) {
	const capacity = 100
	const refillPerSec = 1000.0
	b := deepweb.NewBucket(capacity, refillPerSec)
	start := time.Now()
	var allowed int64
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					atomic.AddInt64(&allowed, 1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// +1 slack for a refill racing the final Allow.
	max := int64(capacity + refillPerSec*elapsed.Seconds() + 1)
	if allowed > max {
		t.Fatalf("bucket admitted %d requests, max permitted by accounting is %d", allowed, max)
	}
	if allowed < capacity {
		t.Fatalf("bucket admitted %d requests, want at least the initial capacity %d", allowed, capacity)
	}
}

// TestStressCountingBudgetExact: 64 goroutines race one shared budget; the
// meter must admit exactly Budget searches, never more, and every loser
// must see ErrBudgetExhausted.
func TestStressCountingBudgetExact(t *testing.T) {
	u := fixture.New()
	const budget = 97
	counting := deepweb.NewCounting(u.DB, budget)
	var ok, exhausted int64
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, err := counting.Search(deepweb.Query{fmt.Sprintf("kw%d", g)})
				switch {
				case err == nil:
					atomic.AddInt64(&ok, 1)
				case errors.Is(err, deepweb.ErrBudgetExhausted):
					atomic.AddInt64(&exhausted, 1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if ok != budget {
		t.Fatalf("admitted %d searches, want exactly %d", ok, budget)
	}
	if exhausted != 64*10-budget {
		t.Fatalf("exhausted = %d, want %d", exhausted, 64*10-budget)
	}
}
