package deepweb

import "fmt"

// Registry is an ordered, name-unique set of searcher handles — the
// federation layer's view of "which interfaces exist". Order is the
// interface index used everywhere downstream (WAL tags, composite hidden
// IDs, allocation tie-breaks), so registration order must be deterministic;
// a map would not do. Not safe for concurrent mutation; build it up front,
// then treat it as read-only.
type Registry struct {
	names    []string
	searcher []Searcher
	byName   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// Add registers s under name at the next index, which it returns. Names
// must be unique and non-empty.
func (r *Registry) Add(name string, s Searcher) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("deepweb: registry: empty interface name")
	}
	if s == nil {
		return 0, fmt.Errorf("deepweb: registry: nil searcher for %q", name)
	}
	if _, dup := r.byName[name]; dup {
		return 0, fmt.Errorf("deepweb: registry: duplicate interface name %q", name)
	}
	idx := len(r.names)
	r.byName[name] = idx
	r.names = append(r.names, name)
	r.searcher = append(r.searcher, s)
	return idx, nil
}

// Len returns the number of registered interfaces.
func (r *Registry) Len() int { return len(r.names) }

// Name returns the name registered at index i.
func (r *Registry) Name(i int) string { return r.names[i] }

// Searcher returns the handle registered at index i.
func (r *Registry) Searcher(i int) Searcher { return r.searcher[i] }

// Index returns the index registered under name, or -1.
func (r *Registry) Index(name string) int {
	if i, ok := r.byName[name]; ok {
		return i
	}
	return -1
}

// Names returns the registration-ordered name list (shared slice; do not
// mutate).
func (r *Registry) Names() []string { return r.names }
