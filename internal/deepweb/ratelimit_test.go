package deepweb_test

import (
	"errors"
	"testing"
	"time"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/fixture"
)

// fakeClock is a manually-stepped time source shared by bucket tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func TestBucketConsumesAndRefills(t *testing.T) {
	clk := newFakeClock()
	b := deepweb.NewBucket(3, 2).WithClock(clk.now) // 3 tokens, 2/s refill
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("token %d denied from a full bucket", i)
		}
	}
	if b.Allow() {
		t.Fatal("empty bucket allowed a request")
	}
	clk.advance(500 * time.Millisecond) // +1 token
	if !b.Allow() {
		t.Fatal("refilled token denied")
	}
	if b.Allow() {
		t.Fatal("second token allowed after only one refilled")
	}
}

func TestBucketCapsAtCapacity(t *testing.T) {
	clk := newFakeClock()
	b := deepweb.NewBucket(2, 100).WithClock(clk.now)
	clk.advance(time.Hour) // would refill thousands of tokens
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens = %v, want capped at 2", got)
	}
}

func TestLimitedFailsFastWhenThrottled(t *testing.T) {
	u := fixture.New()
	clk := newFakeClock()
	l := &deepweb.Limited{S: u.DB, B: deepweb.NewBucket(2, 1).WithClock(clk.now)}
	if _, err := l.Search(deepweb.Query{"thai"}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Search(deepweb.Query{"house"}); err != nil {
		t.Fatal(err)
	}
	_, err := l.Search(deepweb.Query{"noodle"})
	if !errors.Is(err, deepweb.ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if l.K() != u.DB.K() {
		t.Fatal("K must pass through")
	}
	clk.advance(time.Second)
	if _, err := l.Search(deepweb.Query{"noodle"}); err != nil {
		t.Fatalf("post-refill search failed: %v", err)
	}
}

// TestLimitedDoesNotChargeThrottledRequests pins the composition order the
// docs promise: with Counting OUTSIDE Limited the throttled attempt is
// charged (like a real quota meter); with Counting INSIDE it is free.
func TestLimitedCompositionWithCounting(t *testing.T) {
	u := fixture.New()
	clk := newFakeClock()

	// Counting inside: a throttled request never reaches the meter.
	inner := deepweb.NewCounting(u.DB, 0)
	l := &deepweb.Limited{S: inner, B: deepweb.NewBucket(1, 0).WithClock(clk.now)}
	_, _ = l.Search(deepweb.Query{"thai"})
	_, err := l.Search(deepweb.Query{"house"})
	if !errors.Is(err, deepweb.ErrRateLimited) {
		t.Fatalf("err = %v", err)
	}
	if inner.Issued() != 1 {
		t.Fatalf("inner meter charged %d, want 1 (throttled attempt is free)", inner.Issued())
	}

	// Counting outside: every attempt is charged, throttled or not.
	outer := deepweb.NewCounting(&deepweb.Limited{
		S: u.DB, B: deepweb.NewBucket(1, 0).WithClock(clk.now),
	}, 0)
	_, _ = outer.Search(deepweb.Query{"thai"})
	_, _ = outer.Search(deepweb.Query{"house"})
	if outer.Issued() != 2 {
		t.Fatalf("outer meter charged %d, want 2", outer.Issued())
	}
}

func TestDelayedPassesThrough(t *testing.T) {
	u := fixture.New()
	d := &deepweb.Delayed{S: u.DB, Delay: time.Millisecond}
	start := time.Now()
	recs, err := d.Search(deepweb.Query{"thai"})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay not applied")
	}
	want, _ := u.DB.Search(deepweb.Query{"thai"})
	if len(recs) != len(want) {
		t.Fatalf("delayed search returned %d records, want %d", len(recs), len(want))
	}
	if d.K() != u.DB.K() {
		t.Fatal("K must pass through")
	}
}
