package deepweb_test

import (
	"errors"
	"testing"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/fixture"
)

func TestQueryKeyAndString(t *testing.T) {
	q := deepweb.Query{"house", "noodle"}
	if q.Key() != "house noodle" || q.String() != "house noodle" {
		t.Fatalf("Key=%q String=%q", q.Key(), q.String())
	}
}

func TestValidate(t *testing.T) {
	valid := []deepweb.Query{{"a"}, {"a", "b"}, {"house", "noodle"}}
	for _, q := range valid {
		if err := deepweb.Validate(q); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", q, err)
		}
	}
	invalid := []deepweb.Query{nil, {}, {""}, {"B"}, {"b", "a"}, {"a", "a"}}
	for _, q := range invalid {
		if err := deepweb.Validate(q); err == nil {
			t.Errorf("Validate(%v) = nil, want error", q)
		}
	}
}

func TestCountingBudget(t *testing.T) {
	u := fixture.New()
	c := deepweb.NewCounting(u.DB, 2)
	if c.K() != u.DB.K() {
		t.Fatal("K must pass through")
	}
	if c.Remaining() != 2 {
		t.Fatalf("Remaining = %d", c.Remaining())
	}
	if _, err := c.Search(deepweb.Query{"thai"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(deepweb.Query{"house"}); err != nil {
		t.Fatal(err)
	}
	if !c.Exhausted() || c.Remaining() != 0 {
		t.Fatal("budget should be exhausted after 2 queries")
	}
	if _, err := c.Search(deepweb.Query{"ramen"}); !errors.Is(err, deepweb.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if c.Issued() != 2 {
		t.Fatalf("Issued = %d (rejected calls must not be charged)", c.Issued())
	}
}

func TestCountingChargesInvalidQueries(t *testing.T) {
	// An HTTP 400 still costs a request against real API quotas.
	u := fixture.New()
	c := deepweb.NewCounting(u.DB, 5)
	if _, err := c.Search(deepweb.Query{"NOT-NORMALIZED"}); err == nil {
		t.Fatal("expected validation error")
	}
	if c.Issued() != 1 {
		t.Fatalf("Issued = %d, want 1", c.Issued())
	}
}

func TestCountingUnlimited(t *testing.T) {
	u := fixture.New()
	c := deepweb.NewCounting(u.DB, 0)
	for i := 0; i < 100; i++ {
		if _, err := c.Search(deepweb.Query{"thai"}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Remaining() != -1 || c.Exhausted() {
		t.Fatal("zero budget means unlimited")
	}
}

func TestCacheMemoizes(t *testing.T) {
	u := fixture.New()
	counting := deepweb.NewCounting(u.DB, 0)
	cache := deepweb.NewCache(counting)

	a, err := cache.Search(deepweb.Query{"thai"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.Search(deepweb.Query{"thai"})
	if err != nil {
		t.Fatal(err)
	}
	if counting.Issued() != 1 {
		t.Fatalf("Issued = %d, want 1 (second call cached)", counting.Issued())
	}
	if h, m := cache.Stats(); h != 1 || m != 1 {
		t.Fatalf("Hits=%d Misses=%d", h, m)
	}
	if len(a) != len(b) {
		t.Fatal("cached result differs")
	}
	if cache.K() != u.DB.K() {
		t.Fatal("K must pass through")
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	u := fixture.New()
	cache := deepweb.NewCache(u.DB)
	if _, err := cache.Search(deepweb.Query{"BAD"}); err == nil {
		t.Fatal("expected error")
	}
	if _, m := cache.Stats(); m != 0 {
		t.Fatal("errors must not count as misses or be cached")
	}
}
