// Package querypool generates the SMARTCRAWL query pool of §3.1. The pool
// is the union of (a) one very specific "naive" query per local record — a
// concatenation of the record's candidate-key attributes, the same queries
// NAIVECRAWL issues — and (b) every closed frequent keyword itemset with
// support ≥ t in the local database, mined with FP-Growth. The closed-set
// restriction implements the paper's dominance pruning: a query q₂ with
// |q₂(D)| = |q₁(D)| whose keywords are a subset of q₁'s is dominated by q₁
// and removed.
package querypool

import (
	"sort"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/freqmine"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

// Query is one pool entry. IDs are dense 0..len(pool)-1 and used as
// priority-queue and forward-index keys throughout the crawler.
type Query struct {
	ID       int
	Keywords deepweb.Query
	// IDs is Keywords resolved once against the pool's Dict: sorted
	// interned token IDs. Every hot-path lookup (inverted-index
	// intersection, sample membership) runs on this slice instead of
	// re-hashing the keyword strings.
	IDs []uint32
	// Naive marks per-record specific queries (principle 1 of §3.1).
	// A query can be both naive and frequent; Naive stays true.
	Naive bool
	// SourceRecord is the local record the naive query was generated
	// from, or -1 for mined queries. NaiveCrawl uses it to attribute a
	// query to "its" record.
	SourceRecord int
}

// Config controls pool generation.
type Config struct {
	// MinSupport is the paper's t: mined queries must satisfy
	// |q(D)| ≥ MinSupport. Default 2.
	MinSupport int
	// MaxQueryLen bounds the keyword count of mined queries. Default 3.
	// Naive queries are exempt (they carry the full candidate key).
	MaxQueryLen int
	// KeyColumns are the column indices concatenated into each naive
	// query; nil means all columns.
	KeyColumns []int
	// MaxNaiveKeywords truncates naive queries to the first n distinct
	// keywords (0 = unlimited). Real search boxes reject very long
	// queries; the paper's DBLP setup concatenates title+venue+authors.
	MaxNaiveKeywords int
	// Workers parallelizes the FP-Growth mining stage (one task per
	// frequent item's conditional tree). The generated pool — contents
	// and query IDs — is identical for any worker count. 0 or 1 mines
	// sequentially.
	Workers int

	// Dict, when non-nil, is a pre-built frozen corpus dictionary (for
	// example from an opened corpus cache) and replaces the corpus
	// vocabulary scan. It must cover every token of the local records —
	// BuildDict over the sorted corpus vocabulary does by construction.
	Dict *tokenize.Dict

	// SampleSize, when > 0 and smaller than the corpus, switches mining
	// to the out-of-core mode: FP-Growth runs over a deterministic
	// reservoir sample of SampleSize records (seeded by SampleSeed) at a
	// proportionally scaled support threshold, and every candidate's
	// support is then recounted exactly through Count, keeping only
	// queries with true |q(D)| ≥ MinSupport. Peak mining memory becomes
	// O(SampleSize), independent of the corpus. Sampling bounds recall,
	// not precision: an itemset frequent in D but absent from the sample
	// is missed (the scaled threshold keeps 20% slack to make that rare),
	// while every query kept has its exact corpus support.
	SampleSize int
	// SampleSeed seeds the reservoir sample; the pool is a pure function
	// of (corpus, Config), so equal seeds give byte-identical pools.
	SampleSeed uint64
	// Count recounts a candidate's exact corpus support |q(D)| given its
	// sorted token IDs — typically CompressedInvertedIDs.Count of the
	// corpus cache. Required for sampled mining; without it the sample
	// supports are used as-is (scaled threshold, approximate).
	Count func(q []uint32) int
}

func (c Config) withDefaults() Config {
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	if c.MaxQueryLen <= 0 {
		c.MaxQueryLen = 3
	}
	return c
}

// Pool is an immutable generated query pool. Dict is the frozen token
// dictionary built from the local corpus vocabulary during generation;
// every Query.IDs slice is resolved under it, and the crawler builds its
// interned indexes over the same dictionary.
type Pool struct {
	Queries []*Query
	Dict    *tokenize.Dict
	byKey   map[string]int
}

// Len returns the number of pool queries.
func (p *Pool) Len() int { return len(p.Queries) }

// Find returns the pool query with the given normalized keywords, or nil.
func (p *Pool) Find(q deepweb.Query) *Query {
	if i, ok := p.byKey[q.Key()]; ok {
		return p.Queries[i]
	}
	return nil
}

// NaiveQuery builds the specific query NAIVECRAWL would issue for record r:
// the distinct keywords of its key columns, normalized. Returns nil if the
// record has no indexable tokens.
func NaiveQuery(r *relational.Record, tk *tokenize.Tokenizer, cfg Config) deepweb.Query {
	text := ""
	if cfg.KeyColumns == nil {
		text = r.Document()
	} else {
		vals := make([]string, 0, len(cfg.KeyColumns))
		for _, c := range cfg.KeyColumns {
			vals = append(vals, r.Value(c))
		}
		text = tokenize.Document(vals)
	}
	words := tk.Distinct(text)
	if cfg.MaxNaiveKeywords > 0 && len(words) > cfg.MaxNaiveKeywords {
		words = words[:cfg.MaxNaiveKeywords]
	}
	if len(words) == 0 {
		return nil
	}
	sort.Strings(words)
	// Dedup after sort (Distinct already deduped, but truncation keeps
	// the invariant explicit).
	out := words[:1]
	for _, w := range words[1:] {
		if w != out[len(out)-1] {
			out = append(out, w)
		}
	}
	return deepweb.Query(out)
}

// Generate builds the pool for local database D (§3.1): naive queries for
// every record plus closed frequent itemsets with support ≥ t.
func Generate(local *relational.Table, tk *tokenize.Tokenizer, cfg Config) *Pool {
	cfg = cfg.withDefaults()

	// The corpus scan comes first so the frozen dictionary exists before
	// any query is added: every pool keyword — naive queries draw theirs
	// from record documents, mined queries from the transaction items —
	// is in the vocabulary, so resolution below can never fail. A
	// pre-built dictionary (corpus cache) skips the scan.
	dict := cfg.Dict
	if dict == nil {
		dict = scanDict(local, tk)
	}

	// Sampled mining: transactions come from a reservoir sample and the
	// support threshold scales with the sampling fraction (with slack, so
	// borderline-frequent itemsets still surface for the exact recount).
	mineRecs := local.Records
	minSupport := cfg.MinSupport
	sampled := cfg.SampleSize > 0 && cfg.SampleSize < len(local.Records)
	if sampled {
		mineRecs = reservoirSample(local.Records, cfg.SampleSize, cfg.SampleSeed)
		frac := float64(cfg.SampleSize) / float64(len(local.Records))
		minSupport = int(0.8 * float64(cfg.MinSupport) * frac)
		if minSupport < 1 {
			minSupport = 1
		}
	}
	txs := transactionsUnder(dict, mineRecs, tk)
	p := &Pool{Dict: dict, byKey: make(map[string]int)}

	add := func(q deepweb.Query, naive bool, src int) {
		if len(q) == 0 {
			return
		}
		key := q.Key()
		if i, ok := p.byKey[key]; ok {
			if naive && !p.Queries[i].Naive {
				p.Queries[i].Naive = true
				p.Queries[i].SourceRecord = src
			}
			return
		}
		ids, ok := dict.Resolve([]string(q))
		if !ok {
			// Unreachable for generated queries (see above); skipping is
			// the safe degradation for a keyword outside the corpus.
			return
		}
		p.byKey[key] = len(p.Queries)
		p.Queries = append(p.Queries, &Query{
			ID:           len(p.Queries),
			Keywords:     q,
			IDs:          ids,
			Naive:        naive,
			SourceRecord: src,
		})
	}

	// Principle 1: one specific query per record (Q_naive).
	for _, r := range local.Records {
		add(NaiveQuery(r, tk, cfg), true, r.ID)
	}

	// Principle 2: frequent queries with |q(D)| ≥ t, dominance-pruned.
	mined := freqmine.MineFPGrowth(txs, freqmine.Config{
		MinSupport: minSupport,
		MaxLen:     cfg.MaxQueryLen,
		Workers:    cfg.Workers,
	})
	if sampled && cfg.Count != nil {
		// Exact recount against the full corpus index: sample supports
		// become true |q(D)| values, and candidates below the real
		// threshold drop out. Closedness (dominance pruning) below then
		// operates on exact supports, as the paper defines it.
		exact := mined[:0]
		ids := make([]uint32, 0, cfg.MaxQueryLen)
		for _, s := range mined {
			ids = ids[:0]
			for _, it := range s.Items {
				ids = append(ids, uint32(it))
			}
			sortU32Small(ids)
			if sup := cfg.Count(ids); sup >= cfg.MinSupport {
				s.Support = sup
				exact = append(exact, s)
			}
		}
		mined = exact
	}
	for _, s := range freqmine.FilterClosed(mined) {
		words := make([]string, len(s.Items))
		for i, it := range s.Items {
			words[i] = dict.Word(uint32(it))
		}
		sort.Strings(words)
		add(deepweb.Query(words), false, -1)
	}
	return p
}

// scanDict builds the frozen corpus dictionary: token IDs are assigned in
// sorted token order (tokenize.BuildDict over the sorted vocabulary), so
// generation is deterministic and mined itemset items ARE dictionary IDs.
// A corpus cache stores exactly this dictionary, which is why Config.Dict
// can stand in for the scan.
func scanDict(local *relational.Table, tk *tokenize.Tokenizer) *tokenize.Dict {
	seen := make(map[string]struct{})
	for _, r := range local.Records {
		for _, w := range r.Tokens(tk) {
			seen[w] = struct{}{}
		}
	}
	vocab := make([]string, 0, len(seen))
	for w := range seen {
		vocab = append(vocab, w)
	}
	sort.Strings(vocab)
	return tokenize.BuildDict(vocab)
}

// transactionsUnder maps records to integer-item transactions under an
// existing frozen dictionary. Tokens outside the dictionary are dropped
// (they can never form a pool query; see tokenize.Dict).
func transactionsUnder(dict *tokenize.Dict, recs []*relational.Record, tk *tokenize.Tokenizer) [][]int {
	txs := make([][]int, len(recs))
	for i, r := range recs {
		toks := r.Tokens(tk)
		t := make([]int, 0, len(toks))
		for _, w := range toks {
			if id, ok := dict.ID(w); ok {
				t = append(t, int(id))
			}
		}
		txs[i] = t
	}
	return txs
}

// reservoirSample draws a uniform m-record sample in one pass (Vitter's
// algorithm R) with a seed-determined RNG; the result is a pure function
// of (records, m, seed), which keeps sampled pool generation inside the
// determinism oracle.
func reservoirSample(recs []*relational.Record, m int, seed uint64) []*relational.Record {
	rng := stats.NewRNG(seed)
	out := make([]*relational.Record, m)
	copy(out, recs[:m])
	for i := m; i < len(recs); i++ {
		if j := rng.Intn(i + 1); j < m {
			out[j] = recs[i]
		}
	}
	return out
}

// sortU32Small sorts a candidate itemset's IDs (tiny slices; FP-Growth
// emits items in frequency order, Count wants ascending IDs).
func sortU32Small(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
