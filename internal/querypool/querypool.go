// Package querypool generates the SMARTCRAWL query pool of §3.1. The pool
// is the union of (a) one very specific "naive" query per local record — a
// concatenation of the record's candidate-key attributes, the same queries
// NAIVECRAWL issues — and (b) every closed frequent keyword itemset with
// support ≥ t in the local database, mined with FP-Growth. The closed-set
// restriction implements the paper's dominance pruning: a query q₂ with
// |q₂(D)| = |q₁(D)| whose keywords are a subset of q₁'s is dominated by q₁
// and removed.
package querypool

import (
	"sort"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/freqmine"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/tokenize"
)

// Query is one pool entry. IDs are dense 0..len(pool)-1 and used as
// priority-queue and forward-index keys throughout the crawler.
type Query struct {
	ID       int
	Keywords deepweb.Query
	// IDs is Keywords resolved once against the pool's Dict: sorted
	// interned token IDs. Every hot-path lookup (inverted-index
	// intersection, sample membership) runs on this slice instead of
	// re-hashing the keyword strings.
	IDs []uint32
	// Naive marks per-record specific queries (principle 1 of §3.1).
	// A query can be both naive and frequent; Naive stays true.
	Naive bool
	// SourceRecord is the local record the naive query was generated
	// from, or -1 for mined queries. NaiveCrawl uses it to attribute a
	// query to "its" record.
	SourceRecord int
}

// Config controls pool generation.
type Config struct {
	// MinSupport is the paper's t: mined queries must satisfy
	// |q(D)| ≥ MinSupport. Default 2.
	MinSupport int
	// MaxQueryLen bounds the keyword count of mined queries. Default 3.
	// Naive queries are exempt (they carry the full candidate key).
	MaxQueryLen int
	// KeyColumns are the column indices concatenated into each naive
	// query; nil means all columns.
	KeyColumns []int
	// MaxNaiveKeywords truncates naive queries to the first n distinct
	// keywords (0 = unlimited). Real search boxes reject very long
	// queries; the paper's DBLP setup concatenates title+venue+authors.
	MaxNaiveKeywords int
	// Workers parallelizes the FP-Growth mining stage (one task per
	// frequent item's conditional tree). The generated pool — contents
	// and query IDs — is identical for any worker count. 0 or 1 mines
	// sequentially.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	if c.MaxQueryLen <= 0 {
		c.MaxQueryLen = 3
	}
	return c
}

// Pool is an immutable generated query pool. Dict is the frozen token
// dictionary built from the local corpus vocabulary during generation;
// every Query.IDs slice is resolved under it, and the crawler builds its
// interned indexes over the same dictionary.
type Pool struct {
	Queries []*Query
	Dict    *tokenize.Dict
	byKey   map[string]int
}

// Len returns the number of pool queries.
func (p *Pool) Len() int { return len(p.Queries) }

// Find returns the pool query with the given normalized keywords, or nil.
func (p *Pool) Find(q deepweb.Query) *Query {
	if i, ok := p.byKey[q.Key()]; ok {
		return p.Queries[i]
	}
	return nil
}

// NaiveQuery builds the specific query NAIVECRAWL would issue for record r:
// the distinct keywords of its key columns, normalized. Returns nil if the
// record has no indexable tokens.
func NaiveQuery(r *relational.Record, tk *tokenize.Tokenizer, cfg Config) deepweb.Query {
	text := ""
	if cfg.KeyColumns == nil {
		text = r.Document()
	} else {
		vals := make([]string, 0, len(cfg.KeyColumns))
		for _, c := range cfg.KeyColumns {
			vals = append(vals, r.Value(c))
		}
		text = tokenize.Document(vals)
	}
	words := tk.Distinct(text)
	if cfg.MaxNaiveKeywords > 0 && len(words) > cfg.MaxNaiveKeywords {
		words = words[:cfg.MaxNaiveKeywords]
	}
	if len(words) == 0 {
		return nil
	}
	sort.Strings(words)
	// Dedup after sort (Distinct already deduped, but truncation keeps
	// the invariant explicit).
	out := words[:1]
	for _, w := range words[1:] {
		if w != out[len(out)-1] {
			out = append(out, w)
		}
	}
	return deepweb.Query(out)
}

// Generate builds the pool for local database D (§3.1): naive queries for
// every record plus closed frequent itemsets with support ≥ t.
func Generate(local *relational.Table, tk *tokenize.Tokenizer, cfg Config) *Pool {
	cfg = cfg.withDefaults()

	// The corpus scan comes first so the frozen dictionary exists before
	// any query is added: every pool keyword — naive queries draw theirs
	// from record documents, mined queries from the transaction items —
	// is in the vocabulary, so resolution below can never fail.
	dict, txs := tokenTransactions(local, tk)
	p := &Pool{Dict: dict, byKey: make(map[string]int)}

	add := func(q deepweb.Query, naive bool, src int) {
		if len(q) == 0 {
			return
		}
		key := q.Key()
		if i, ok := p.byKey[key]; ok {
			if naive && !p.Queries[i].Naive {
				p.Queries[i].Naive = true
				p.Queries[i].SourceRecord = src
			}
			return
		}
		ids, ok := dict.Resolve([]string(q))
		if !ok {
			// Unreachable for generated queries (see above); skipping is
			// the safe degradation for a keyword outside the corpus.
			return
		}
		p.byKey[key] = len(p.Queries)
		p.Queries = append(p.Queries, &Query{
			ID:           len(p.Queries),
			Keywords:     q,
			IDs:          ids,
			Naive:        naive,
			SourceRecord: src,
		})
	}

	// Principle 1: one specific query per record (Q_naive).
	for _, r := range local.Records {
		add(NaiveQuery(r, tk, cfg), true, r.ID)
	}

	// Principle 2: frequent queries with |q(D)| ≥ t, dominance-pruned.
	mined := freqmine.MineFPGrowth(txs, freqmine.Config{
		MinSupport: cfg.MinSupport,
		MaxLen:     cfg.MaxQueryLen,
		Workers:    cfg.Workers,
	})
	for _, s := range freqmine.FilterClosed(mined) {
		words := make([]string, len(s.Items))
		for i, it := range s.Items {
			words[i] = dict.Word(uint32(it))
		}
		sort.Strings(words)
		add(deepweb.Query(words), false, -1)
	}
	return p
}

// tokenTransactions maps the local records to integer-item transactions
// under a freshly built frozen dictionary. Token IDs are assigned in
// sorted token order (tokenize.BuildDict over the sorted vocabulary), so
// generation is deterministic and mined itemset items ARE dictionary IDs.
func tokenTransactions(local *relational.Table, tk *tokenize.Tokenizer) (*tokenize.Dict, [][]int) {
	seen := make(map[string]struct{})
	for _, r := range local.Records {
		for _, w := range r.Tokens(tk) {
			seen[w] = struct{}{}
		}
	}
	vocab := make([]string, 0, len(seen))
	for w := range seen {
		vocab = append(vocab, w)
	}
	sort.Strings(vocab)
	dict := tokenize.BuildDict(vocab)
	txs := make([][]int, len(local.Records))
	for i, r := range local.Records {
		toks := r.Tokens(tk)
		t := make([]int, len(toks))
		for j, w := range toks {
			id, _ := dict.ID(w)
			t[j] = int(id)
		}
		txs[i] = t
	}
	return dict, txs
}
