package querypool

import (
	"reflect"
	"testing"

	"smartcrawl/internal/deepweb"
	"smartcrawl/internal/fixture"
	"smartcrawl/internal/index"
	"smartcrawl/internal/relational"
	"smartcrawl/internal/stats"
	"smartcrawl/internal/tokenize"
)

func TestNaiveQuery(t *testing.T) {
	tk := tokenize.New()
	r := &relational.Record{ID: 0, Values: []string{"Thai Noodle House", "Vancouver"}}
	q := NaiveQuery(r, tk, Config{})
	want := deepweb.Query{"house", "noodle", "thai", "vancouver"}
	if !reflect.DeepEqual(q, want) {
		t.Fatalf("NaiveQuery = %v, want %v", q, want)
	}
}

func TestNaiveQueryKeyColumns(t *testing.T) {
	tk := tokenize.New()
	r := &relational.Record{ID: 0, Values: []string{"Thai House", "Vancouver"}}
	q := NaiveQuery(r, tk, Config{KeyColumns: []int{0}})
	if !reflect.DeepEqual(q, deepweb.Query{"house", "thai"}) {
		t.Fatalf("NaiveQuery = %v", q)
	}
}

func TestNaiveQueryTruncation(t *testing.T) {
	tk := tokenize.New()
	r := &relational.Record{ID: 0, Values: []string{"e d c b a"}}
	q := NaiveQuery(r, tk, Config{MaxNaiveKeywords: 3})
	// First 3 distinct in appearance order (e, d, c), then sorted.
	if !reflect.DeepEqual(q, deepweb.Query{"c", "d", "e"}) {
		t.Fatalf("NaiveQuery = %v", q)
	}
}

func TestNaiveQueryEmptyRecord(t *testing.T) {
	tk := tokenize.New()
	r := &relational.Record{ID: 0, Values: []string{"of the"}}
	if q := NaiveQuery(r, tk, Config{}); q != nil {
		t.Fatalf("NaiveQuery on stop-word-only record = %v, want nil", q)
	}
}

func TestGenerateRunningExample(t *testing.T) {
	u := fixture.New()
	p := Generate(u.Local, u.Tokenizer, Config{MinSupport: 2, MaxQueryLen: 3})

	// Every record's naive query must be present (principle 1).
	for _, r := range u.Local.Records {
		nq := NaiveQuery(r, u.Tokenizer, Config{})
		q := p.Find(nq)
		if q == nil {
			// d4's naive query has 4 keywords; mined queries are
			// capped at 3, so it must still appear as naive.
			t.Fatalf("naive query %v for record %d missing", nq, r.ID)
		}
		if !q.Naive {
			t.Fatalf("query %v should be flagged naive", nq)
		}
	}

	// Closed frequent sets of the fixture: {thai house} (3) and
	// {thai noodle house} (2). {noodle}, {house}, {thai} etc. are
	// dominated.
	if q := p.Find(deepweb.Query{"house", "thai"}); q == nil {
		t.Error("mined query {house thai} missing")
	}
	if q := p.Find(deepweb.Query{"house", "noodle", "thai"}); q == nil {
		t.Error("mined query {house noodle thai} missing")
	} else if !q.Naive {
		t.Error("{house noodle thai} is also d1's naive query")
	}
	if p.Find(deepweb.Query{"noodle"}) != nil {
		t.Error("{noodle} should be dominance-pruned")
	}
	if p.Find(deepweb.Query{"house"}) != nil {
		t.Error("{house} should be dominance-pruned (dominated by {house thai})")
	}
}

func TestGenerateIDsDenseAndUnique(t *testing.T) {
	u := fixture.New()
	p := Generate(u.Local, u.Tokenizer, Config{})
	seen := map[string]bool{}
	for i, q := range p.Queries {
		if q.ID != i {
			t.Fatalf("query %d has ID %d", i, q.ID)
		}
		if seen[q.Keywords.Key()] {
			t.Fatalf("duplicate query %v", q.Keywords)
		}
		seen[q.Keywords.Key()] = true
		if err := deepweb.Validate(q.Keywords); err != nil {
			t.Fatalf("pool query %v invalid: %v", q.Keywords, err)
		}
	}
}

// Every mined pool query must genuinely have |q(D)| ≥ t, and every local
// record must be covered by at least one pool query (its naive query).
func TestGenerateInvariants(t *testing.T) {
	tk := tokenize.New()
	rng := stats.NewRNG(77)
	zipf := stats.NewZipf(rng, 1.0, 50)
	vocabWords := make([]string, 50)
	for i := range vocabWords {
		vocabWords[i] = string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('0'+i%10))
	}
	local := relational.NewTable("d", []string{"doc"})
	for i := 0; i < 200; i++ {
		doc := ""
		for j := 0; j < 4; j++ {
			doc += vocabWords[zipf.Draw()] + " "
		}
		local.Append(doc)
	}
	const minSup = 3
	p := Generate(local, tk, Config{MinSupport: minSup, MaxQueryLen: 3})
	inv := index.BuildInverted(local.Records, tk)

	naiveCount := 0
	for _, q := range p.Queries {
		freq := inv.Count(q.Keywords)
		if q.Naive {
			naiveCount++
			if freq < 1 {
				t.Fatalf("naive query %v matches no record", q.Keywords)
			}
			continue
		}
		if freq < minSup {
			t.Fatalf("mined query %v has |q(D)| = %d < %d", q.Keywords, freq, minSup)
		}
	}
	if naiveCount == 0 {
		t.Fatal("no naive queries generated")
	}
	// Coverage: each record's naive query is in the pool.
	for _, r := range local.Records {
		if p.Find(NaiveQuery(r, tk, Config{})) == nil {
			t.Fatalf("record %d has no naive query in pool", r.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	u := fixture.New()
	a := Generate(u.Local, u.Tokenizer, Config{})
	b := Generate(u.Local, u.Tokenizer, Config{})
	if a.Len() != b.Len() {
		t.Fatal("non-deterministic pool size")
	}
	for i := range a.Queries {
		if !reflect.DeepEqual(a.Queries[i], b.Queries[i]) {
			t.Fatalf("query %d differs between runs", i)
		}
	}
}

func TestPoolFindMiss(t *testing.T) {
	u := fixture.New()
	p := Generate(u.Local, u.Tokenizer, Config{})
	if p.Find(deepweb.Query{"zzz"}) != nil {
		t.Fatal("Find of unknown query should be nil")
	}
}

// makeZipfTable builds a mid-sized zipfy corpus for the sampled-mining
// tests.
func makeZipfTable(n int, seed uint64) *relational.Table {
	rng := stats.NewRNG(seed)
	zipf := stats.NewZipf(rng, 1.0, 60)
	vocabWords := make([]string, 60)
	for i := range vocabWords {
		vocabWords[i] = string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('0'+i%10))
	}
	local := relational.NewTable("d", []string{"doc"})
	for i := 0; i < n; i++ {
		doc := ""
		for j := 0; j < 5; j++ {
			doc += vocabWords[zipf.Draw()] + " "
		}
		local.Append(doc)
	}
	return local
}

// Sampled mining with an exact recount must never emit a mined query
// whose true corpus support is below MinSupport (precision), and must be
// a pure function of its configuration (determinism).
func TestGenerateSampledExactSupports(t *testing.T) {
	tk := tokenize.New()
	local := makeZipfTable(2000, 41)
	const minSup = 10
	dict := scanDict(local, tk)
	inv := index.BuildCompressedInvertedIDs(local.Records, tk, dict)
	cfg := Config{
		MinSupport: minSup, MaxQueryLen: 3,
		Dict: dict, SampleSize: 300, SampleSeed: 9, Count: inv.Count,
	}
	p := Generate(local, tk, cfg)

	mined := 0
	for _, q := range p.Queries {
		if q.Naive {
			continue
		}
		mined++
		if sup := inv.Count(q.IDs); sup < minSup {
			t.Fatalf("sampled mined query %v has exact support %d < %d", q.Keywords, sup, minSup)
		}
	}
	if mined == 0 {
		t.Fatal("sampled mining produced no frequent queries")
	}

	// Recall sanity: the sampled pool should find most of the full pool's
	// mined queries on this heavily zipfed corpus.
	full := Generate(local, tk, Config{MinSupport: minSup, MaxQueryLen: 3})
	fullMined, hit := 0, 0
	for _, q := range full.Queries {
		if q.Naive {
			continue
		}
		fullMined++
		if p.Find(q.Keywords) != nil {
			hit++
		}
	}
	if fullMined == 0 {
		t.Fatal("full mining produced no frequent queries")
	}
	if ratio := float64(hit) / float64(fullMined); ratio < 0.8 {
		t.Fatalf("sampled pool recalls only %d/%d (%.0f%%) of full mined queries", hit, fullMined, 100*ratio)
	}

	q := Generate(local, tk, cfg)
	if q.Len() != p.Len() {
		t.Fatalf("sampled pool non-deterministic: %d vs %d queries", q.Len(), p.Len())
	}
	for i := range p.Queries {
		if !reflect.DeepEqual(p.Queries[i], q.Queries[i]) {
			t.Fatalf("sampled pool query %d differs between runs", i)
		}
	}
}

// A pre-built dictionary (the corpus-cache path) must reproduce the
// scanned pool exactly: same dictionary contents means same IDs, same
// transactions, same mining.
func TestGenerateWithPrebuiltDict(t *testing.T) {
	tk := tokenize.New()
	local := makeZipfTable(500, 13)
	scanned := Generate(local, tk, Config{MinSupport: 3, MaxQueryLen: 3})
	prebuilt := Generate(local, tk, Config{MinSupport: 3, MaxQueryLen: 3, Dict: scanDict(local, tk)})
	if scanned.Len() != prebuilt.Len() {
		t.Fatalf("pool sizes differ: %d vs %d", scanned.Len(), prebuilt.Len())
	}
	for i := range scanned.Queries {
		if !reflect.DeepEqual(scanned.Queries[i], prebuilt.Queries[i]) {
			t.Fatalf("query %d differs under prebuilt dict", i)
		}
	}
}
