package relational

import (
	"sort"
	"strings"

	"smartcrawl/internal/tokenize"
)

// SchemaMapping maps local column indices to hidden column indices. A value
// of -1 means the local column has no counterpart.
type SchemaMapping struct {
	LocalToHidden []int
	// Scores[i] is the confidence of the i-th mapping in [0, 1].
	Scores []float64
}

// MatchSchemas aligns the attributes of a local and a hidden table. The
// paper assumes schemas are pre-aligned (§2); this implements the standard
// two-signal instance-based matcher used by the Deeper demo system so the
// end-to-end pipeline works on raw CSVs:
//
//  1. exact (case-insensitive) attribute-name equality wins outright;
//  2. otherwise columns are paired greedily by the Jaccard similarity of
//     their value-token distributions over a bounded row sample.
//
// Each hidden column is assigned to at most one local column.
func MatchSchemas(local, hidden *Table, tk *tokenize.Tokenizer) SchemaMapping {
	const sampleRows = 200

	m := SchemaMapping{
		LocalToHidden: make([]int, len(local.Schema)),
		Scores:        make([]float64, len(local.Schema)),
	}
	for i := range m.LocalToHidden {
		m.LocalToHidden[i] = -1
	}
	usedHidden := make([]bool, len(hidden.Schema))

	// Pass 1: exact name matches.
	for i, ls := range local.Schema {
		for j, hs := range hidden.Schema {
			if !usedHidden[j] && strings.EqualFold(ls, hs) {
				m.LocalToHidden[i] = j
				m.Scores[i] = 1
				usedHidden[j] = true
				break
			}
		}
	}

	// Pass 2: instance-based greedy matching for the rest.
	localSets := columnTokenSets(local, tk, sampleRows)
	hiddenSets := columnTokenSets(hidden, tk, sampleRows)

	type cand struct {
		li, hj int
		score  float64
	}
	var cands []cand
	for i := range local.Schema {
		if m.LocalToHidden[i] >= 0 {
			continue
		}
		for j := range hidden.Schema {
			if usedHidden[j] {
				continue
			}
			s := jaccardSets(localSets[i], hiddenSets[j])
			if s > 0 {
				cands = append(cands, cand{i, j, s})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		if cands[a].li != cands[b].li {
			return cands[a].li < cands[b].li
		}
		return cands[a].hj < cands[b].hj
	})
	for _, c := range cands {
		if m.LocalToHidden[c.li] >= 0 || usedHidden[c.hj] {
			continue
		}
		m.LocalToHidden[c.li] = c.hj
		m.Scores[c.li] = c.score
		usedHidden[c.hj] = true
	}
	return m
}

// UnmappedHidden returns hidden column indices not claimed by any local
// column — the candidate enrichment attributes.
func (m SchemaMapping) UnmappedHidden(hiddenWidth int) []int {
	used := make([]bool, hiddenWidth)
	for _, j := range m.LocalToHidden {
		if j >= 0 {
			used[j] = true
		}
	}
	var out []int
	for j := 0; j < hiddenWidth; j++ {
		if !used[j] {
			out = append(out, j)
		}
	}
	return out
}

func columnTokenSets(t *Table, tk *tokenize.Tokenizer, maxRows int) []map[string]struct{} {
	sets := make([]map[string]struct{}, len(t.Schema))
	for i := range sets {
		sets[i] = make(map[string]struct{})
	}
	n := len(t.Records)
	if n > maxRows {
		n = maxRows
	}
	for _, r := range t.Records[:n] {
		for i := range t.Schema {
			for _, w := range tk.Tokens(r.Value(i)) {
				sets[i][w] = struct{}{}
			}
		}
	}
	return sets
}

func jaccardSets(a, b map[string]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, big := a, b
	if len(small) > len(big) {
		small, big = big, small
	}
	inter := 0
	for w := range small {
		if _, ok := big[w]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
