package relational

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSON-Lines I/O: one JSON object per row, keyed by attribute name — the
// format web-API dumps and data-wrangling tools commonly exchange. Unlike
// CSV, it round-trips attribute names per row and tolerates records from
// evolving schemas (missing keys become empty values; unknown keys extend
// the schema in read order).

// WriteJSONL writes the table as JSON Lines.
func (t *Table) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range t.Records {
		obj := make(map[string]string, len(t.Schema))
		for i, name := range t.Schema {
			obj[name] = r.Value(i)
		}
		if err := enc.Encode(obj); err != nil {
			return fmt.Errorf("relational: encoding row %d: %w", r.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a table from JSON Lines. The schema is the union of keys
// in encounter order (first row's keys first, sorted within each row for
// determinism via json map iteration being random — so keys are collected
// explicitly and sorted per first appearance). Rows missing a key get "".
func ReadJSONL(name string, r io.Reader) (*Table, error) {
	type row map[string]string
	var rows []row
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var obj row
		if err := dec.Decode(&obj); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("relational: reading JSONL row %d: %w", len(rows), err)
		}
		rows = append(rows, obj)
	}
	// Schema: keys in order of first appearance; within one row, sorted
	// for determinism (JSON objects are unordered).
	var schema []string
	seen := map[string]bool{}
	for _, obj := range rows {
		keys := make([]string, 0, len(obj))
		for k := range obj {
			if !seen[k] {
				keys = append(keys, k)
			}
		}
		sortStrings(keys)
		for _, k := range keys {
			seen[k] = true
			schema = append(schema, k)
		}
	}
	if len(schema) == 0 {
		return nil, fmt.Errorf("relational: JSONL input %q has no attributes", name)
	}
	t := NewTable(name, schema)
	for _, obj := range rows {
		vals := make([]string, len(schema))
		for i, k := range schema {
			vals[i] = obj[k]
		}
		t.Append(vals...)
	}
	return t, nil
}

// sortStrings is a tiny insertion sort (schema key lists are short).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
