package relational

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"smartcrawl/internal/tokenize"
)

func restaurantTable() *Table {
	t := NewTable("restaurants", []string{"name", "city"})
	t.Append("Thai Noodle House", "Vancouver")
	t.Append("Saigon Noodle", "Burnaby")
	t.Append("Thai House", "Surrey")
	t.Append("Noodle House", "Vancouver")
	return t
}

func TestAppendAssignsDenseIDs(t *testing.T) {
	tbl := restaurantTable()
	for i, r := range tbl.Records {
		if r.ID != i {
			t.Fatalf("record %d has ID %d", i, r.ID)
		}
	}
}

func TestAppendPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	restaurantTable().Append("only-one-value")
}

func TestRecordDocumentAndTokens(t *testing.T) {
	tk := tokenize.New()
	tbl := restaurantTable()
	r := tbl.Records[0]
	if r.Document() != "Thai Noodle House Vancouver" {
		t.Fatalf("Document = %q", r.Document())
	}
	want := []string{"thai", "noodle", "house", "vancouver"}
	if got := r.Tokens(tk); !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
	// Cache must be stable across calls.
	if got := r.Tokens(tk); !reflect.DeepEqual(got, want) {
		t.Fatalf("cached Tokens = %v", got)
	}
}

func TestInvalidateTokens(t *testing.T) {
	tk := tokenize.New()
	r := &Record{ID: 0, Values: []string{"alpha"}}
	_ = r.Tokens(tk)
	r.Values[0] = "beta"
	r.InvalidateTokens()
	if got := r.Tokens(tk); !reflect.DeepEqual(got, []string{"beta"}) {
		t.Fatalf("Tokens after invalidate = %v", got)
	}
}

func TestClone(t *testing.T) {
	r := &Record{ID: 7, Values: []string{"a", "b"}}
	c := r.Clone()
	c.Values[0] = "z"
	if r.Values[0] != "a" {
		t.Fatal("Clone must deep-copy values")
	}
	if c.ID != 7 {
		t.Fatal("Clone must keep ID")
	}
}

func TestCol(t *testing.T) {
	tbl := restaurantTable()
	if tbl.Col("City") != 1 { // case-insensitive
		t.Fatal("Col(City) should be 1")
	}
	if tbl.Col("rating") != -1 {
		t.Fatal("missing column should be -1")
	}
}

func TestProject(t *testing.T) {
	tbl := restaurantTable()
	p, err := tbl.Project("city", "name")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Schema, []string{"city", "name"}) {
		t.Fatalf("schema = %v", p.Schema)
	}
	if p.Records[0].Value(0) != "Vancouver" || p.Records[0].Value(1) != "Thai Noodle House" {
		t.Fatalf("row 0 = %v", p.Records[0].Values)
	}
	if _, err := tbl.Project("nope"); err == nil {
		t.Fatal("expected error for unknown column")
	}
}

func TestDedup(t *testing.T) {
	tk := tokenize.New()
	tbl := NewTable("t", []string{"name"})
	tbl.Append("Thai House")
	tbl.Append("thai   HOUSE") // same normalized document
	tbl.Append("Thai House!")  // punctuation-only difference
	tbl.Append("Steak House")
	dropped := tbl.Dedup(tk)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if tbl.Len() != 2 {
		t.Fatalf("len = %d, want 2", tbl.Len())
	}
	for i, r := range tbl.Records {
		if r.ID != i {
			t.Fatal("IDs must be reassigned densely after dedup")
		}
	}
}

func TestAddColumn(t *testing.T) {
	tbl := restaurantTable()
	j := tbl.AddColumn("rating", "?")
	if j != 2 || tbl.Schema[2] != "rating" {
		t.Fatalf("AddColumn index = %d, schema = %v", j, tbl.Schema)
	}
	for _, r := range tbl.Records {
		if r.Value(2) != "?" {
			t.Fatalf("default not applied: %v", r.Values)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := restaurantTable()
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("restaurants", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Schema, tbl.Schema) {
		t.Fatalf("schema = %v", got.Schema)
	}
	if got.Len() != tbl.Len() {
		t.Fatalf("len = %d", got.Len())
	}
	for i := range tbl.Records {
		if !reflect.DeepEqual(got.Records[i].Values, tbl.Records[i].Values) {
			t.Fatalf("row %d = %v", i, got.Records[i].Values)
		}
	}
}

func TestReadCSVRaggedRows(t *testing.T) {
	in := "name,city\nThai House\nSteak House,Surrey,extra\n"
	tbl, err := ReadCSV("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Records[0].Value(1) != "" {
		t.Fatal("short row should be padded")
	}
	if len(tbl.Records[1].Values) != 2 {
		t.Fatal("long row should be trimmed")
	}
}

func TestReadCSVEmpty(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestMatchSchemasByName(t *testing.T) {
	tk := tokenize.New()
	local := NewTable("d", []string{"Name", "City"})
	hidden := NewTable("h", []string{"city", "name", "rating"})
	m := MatchSchemas(local, hidden, tk)
	if m.LocalToHidden[0] != 1 || m.LocalToHidden[1] != 0 {
		t.Fatalf("mapping = %v", m.LocalToHidden)
	}
	if got := m.UnmappedHidden(3); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("unmapped = %v", got)
	}
}

func TestMatchSchemasByValues(t *testing.T) {
	tk := tokenize.New()
	local := NewTable("d", []string{"restaurant", "location"})
	local.Append("Thai Noodle House", "Vancouver")
	local.Append("Saigon Noodle", "Burnaby")
	local.Append("Steak House", "Surrey")

	hidden := NewTable("h", []string{"stars", "place", "biz"})
	hidden.Append("4.5", "Vancouver", "Thai Noodle House")
	hidden.Append("3.9", "Burnaby", "Saigon Noodle")
	hidden.Append("4.1", "Surrey", "Steak House")

	m := MatchSchemas(local, hidden, tk)
	if m.LocalToHidden[0] != 2 {
		t.Fatalf("restaurant should map to biz, got %d", m.LocalToHidden[0])
	}
	if m.LocalToHidden[1] != 1 {
		t.Fatalf("location should map to place, got %d", m.LocalToHidden[1])
	}
	if got := m.UnmappedHidden(3); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("unmapped = %v (stars should be the enrichment column)", got)
	}
}

func TestMatchSchemasNoOverlap(t *testing.T) {
	tk := tokenize.New()
	local := NewTable("d", []string{"x"})
	local.Append("aaa bbb")
	hidden := NewTable("h", []string{"y"})
	hidden.Append("ccc ddd")
	m := MatchSchemas(local, hidden, tk)
	if m.LocalToHidden[0] != -1 {
		t.Fatalf("disjoint columns should not match, got %d", m.LocalToHidden[0])
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tbl := restaurantTable()
	var buf bytes.Buffer
	if err := tbl.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL("restaurants", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tbl.Len() {
		t.Fatalf("len = %d", got.Len())
	}
	for i, r := range tbl.Records {
		for j, name := range tbl.Schema {
			if got.Records[i].Value(got.Col(name)) != r.Value(j) {
				t.Fatalf("row %d col %s differs", i, name)
			}
		}
	}
}

func TestReadJSONLRaggedSchema(t *testing.T) {
	in := `{"name":"Thai House","city":"Phoenix"}
{"name":"Steak House","rating":"4.3"}
`
	tbl, err := ReadJSONL("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Schema is the union: city+name from row 1, rating appended from row 2.
	if len(tbl.Schema) != 3 {
		t.Fatalf("schema = %v", tbl.Schema)
	}
	if tbl.Records[0].Value(tbl.Col("rating")) != "" {
		t.Fatal("missing key should be empty")
	}
	if tbl.Records[1].Value(tbl.Col("rating")) != "4.3" {
		t.Fatal("late-appearing key should be read")
	}
	if tbl.Records[1].Value(tbl.Col("city")) != "" {
		t.Fatal("absent key should be empty")
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL("t", strings.NewReader("not json")); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := ReadJSONL("t", strings.NewReader("")); err == nil {
		t.Fatal("empty input should fail (no attributes)")
	}
}
