package relational

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"smartcrawl/internal/tokenize"
)

// Table is a named relation: a schema (attribute names) plus records whose
// Values align with the schema positionally.
type Table struct {
	Name    string
	Schema  []string
	Records []*Record
}

// NewTable returns an empty table with the given schema.
func NewTable(name string, schema []string) *Table {
	return &Table{Name: name, Schema: append([]string(nil), schema...)}
}

// Append adds a row and assigns it the next record ID. It panics if the row
// width does not match the schema, which would silently misalign attributes
// downstream.
func (t *Table) Append(values ...string) *Record {
	if len(values) != len(t.Schema) {
		panic(fmt.Sprintf("relational: row width %d != schema width %d",
			len(values), len(t.Schema)))
	}
	r := &Record{ID: len(t.Records), Values: append([]string(nil), values...)}
	t.Records = append(t.Records, r)
	return r
}

// Len returns the number of records.
func (t *Table) Len() int { return len(t.Records) }

// Col returns the index of the named attribute, or -1.
func (t *Table) Col(name string) int {
	for i, s := range t.Schema {
		if strings.EqualFold(s, name) {
			return i
		}
	}
	return -1
}

// Project returns a new table containing only the named columns, in the
// given order. Unknown column names produce an error rather than silent
// empty columns.
func (t *Table) Project(cols ...string) (*Table, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := t.Col(c)
		if j < 0 {
			return nil, fmt.Errorf("relational: no column %q in table %q", c, t.Name)
		}
		idx[i] = j
	}
	out := NewTable(t.Name, cols)
	for _, r := range t.Records {
		row := make([]string, len(idx))
		for i, j := range idx {
			row[i] = r.Value(j)
		}
		out.Append(row...)
	}
	return out, nil
}

// Dedup removes duplicate records, where duplicates are records with equal
// normalized documents (footnote 3: local duplicates are removed before
// matching, or treated as one record). The first occurrence is kept and
// record IDs are reassigned densely. It returns the number of rows dropped.
func (t *Table) Dedup(tk *tokenize.Tokenizer) int {
	seen := make(map[string]bool, len(t.Records))
	kept := t.Records[:0]
	dropped := 0
	for _, r := range t.Records {
		key := strings.Join(tk.NormalizeQuery(r.Document()), " ")
		if seen[key] {
			dropped++
			continue
		}
		seen[key] = true
		kept = append(kept, r)
	}
	t.Records = kept
	for i, r := range t.Records {
		r.ID = i
	}
	return dropped
}

// AddColumn appends a new attribute with the given default value for all
// existing rows and returns its column index. Used by the enrichment layer
// to attach crawled attributes.
func (t *Table) AddColumn(name, def string) int {
	t.Schema = append(t.Schema, name)
	for _, r := range t.Records {
		r.Values = append(r.Values, def)
		r.InvalidateTokens()
	}
	return len(t.Schema) - 1
}

// WriteCSV writes the table (header row first) to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema); err != nil {
		return err
	}
	for _, r := range t.Records {
		if err := cw.Write(r.Values); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table (header row first) from r.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // tolerate ragged rows; Append re-checks width
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relational: reading CSV header: %w", err)
	}
	t := NewTable(name, header)
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relational: reading CSV row: %w", err)
		}
		// Pad or trim ragged rows to schema width.
		for len(row) < len(header) {
			row = append(row, "")
		}
		t.Append(row[:len(header)]...)
	}
	return t, nil
}
