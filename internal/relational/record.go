// Package relational is the lightweight relational substrate the paper's
// Section 2 assumes: local and hidden databases are relational tables whose
// records are viewed as keyword documents. It provides records, tables with
// schemas, duplicate removal (footnote 3 of the paper), CSV import/export
// for the CLI tools, and a value-overlap schema matcher (the paper treats
// schema matching as a solved pre-step; we implement a working one so the
// end-to-end system is runnable).
package relational

import (
	"fmt"
	"strings"

	"smartcrawl/internal/tokenize"
)

// Record is one row of a table. ID is unique within its table and stable
// across the life of a crawl; Values aligns positionally with the owning
// table's schema.
type Record struct {
	ID     int
	Values []string

	// tokens caches the distinct-token set of the record's document; it
	// is populated lazily by Tokens and must be invalidated (set nil) if
	// Values is mutated.
	tokens []string
}

// Document returns the record's searchable document: the concatenation of
// all attribute values (Definition 1).
func (r *Record) Document() string { return tokenize.Document(r.Values) }

// Tokens returns the record's distinct keyword tokens in first-appearance
// order, computed with tk and cached. Callers must pass the same tokenizer
// for the life of the record.
func (r *Record) Tokens(tk *tokenize.Tokenizer) []string {
	if r.tokens == nil {
		r.tokens = tk.Distinct(r.Document())
		if r.tokens == nil {
			r.tokens = []string{} // distinguish "computed, empty"
		}
	}
	return r.tokens
}

// InvalidateTokens clears the cached token set after a mutation of Values.
func (r *Record) InvalidateTokens() { r.tokens = nil }

// Value returns the value of the attribute at column i, or "" if out of
// range (records imported from ragged CSVs may be short).
func (r *Record) Value(i int) string {
	if i < 0 || i >= len(r.Values) {
		return ""
	}
	return r.Values[i]
}

// Clone returns a deep copy of the record (token cache not copied).
func (r *Record) Clone() *Record {
	v := make([]string, len(r.Values))
	copy(v, r.Values)
	return &Record{ID: r.ID, Values: v}
}

// String renders the record for debugging.
func (r *Record) String() string {
	return fmt.Sprintf("#%d[%s]", r.ID, strings.Join(r.Values, "|"))
}
