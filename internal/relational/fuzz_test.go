package relational

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV ingester never panics on arbitrary input and
// that whatever parses round-trips through WriteCSV/ReadCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("name,city\nThai House,Phoenix\n")
	f.Add("a\n\n\n")
	f.Add("a,b\nshort\nlong,er,row\n")
	f.Add("\"quoted,comma\",b\nv1,v2\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		tbl, err := ReadCSV("t", strings.NewReader(s))
		if err != nil {
			return
		}
		for _, r := range tbl.Records {
			if len(r.Values) != len(tbl.Schema) {
				t.Fatalf("row %d width %d != schema %d", r.ID, len(r.Values), len(tbl.Schema))
			}
		}
		// A header whose every name is empty serializes to a blank line
		// (another encoding/csv asymmetry), so it cannot round trip.
		headerEmpty := true
		for _, name := range tbl.Schema {
			if name != "" {
				headerEmpty = false
				break
			}
		}
		if headerEmpty {
			return
		}
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			// Some parseable headers (e.g. containing \r alone) cannot
			// be re-encoded; that is an error, not a panic.
			return
		}
		again, err := ReadCSV("t", &buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		// encoding/csv cannot round-trip rows whose every field is
		// empty (they serialize to blank lines, which readers skip), so
		// only count rows with some content.
		nonEmpty := 0
		for _, r := range tbl.Records {
			for _, v := range r.Values {
				if v != "" {
					nonEmpty++
					break
				}
			}
		}
		if again.Len() < nonEmpty || again.Len() > tbl.Len() {
			t.Fatalf("round trip row count %d outside [%d, %d]", again.Len(), nonEmpty, tbl.Len())
		}
	})
}

// FuzzReadJSONL checks the JSONL ingester never panics and preserves row
// counts through a write/read round trip.
func FuzzReadJSONL(f *testing.F) {
	f.Add(`{"a":"1"}` + "\n" + `{"a":"2","b":"3"}` + "\n")
	f.Add(`{"x":"y"}`)
	f.Add(`null`)
	f.Add(`[1,2]`)
	f.Add(``)
	f.Add(`{"dup":"1","dup":"2"}`)
	f.Fuzz(func(t *testing.T, s string) {
		tbl, err := ReadJSONL("t", strings.NewReader(s))
		if err != nil {
			return
		}
		for _, r := range tbl.Records {
			if len(r.Values) != len(tbl.Schema) {
				t.Fatalf("row %d width %d != schema %d", r.ID, len(r.Values), len(tbl.Schema))
			}
		}
		var buf bytes.Buffer
		if err := tbl.WriteJSONL(&buf); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		again, err := ReadJSONL("t", &buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if again.Len() != tbl.Len() {
			t.Fatalf("round trip row count %d != %d", again.Len(), tbl.Len())
		}
	})
}
