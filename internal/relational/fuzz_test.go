package relational

import (
	"bytes"
	"strings"
	"testing"

	"smartcrawl/internal/tokenize"
)

// FuzzReadCSV checks the CSV ingester never panics on arbitrary input and
// that whatever parses round-trips through WriteCSV/ReadCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("name,city\nThai House,Phoenix\n")
	f.Add("a\n\n\n")
	f.Add("a,b\nshort\nlong,er,row\n")
	f.Add("\"quoted,comma\",b\nv1,v2\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		tbl, err := ReadCSV("t", strings.NewReader(s))
		if err != nil {
			return
		}
		for _, r := range tbl.Records {
			if len(r.Values) != len(tbl.Schema) {
				t.Fatalf("row %d width %d != schema %d", r.ID, len(r.Values), len(tbl.Schema))
			}
		}
		// A header whose every name is empty serializes to a blank line
		// (another encoding/csv asymmetry), so it cannot round trip.
		headerEmpty := true
		for _, name := range tbl.Schema {
			if name != "" {
				headerEmpty = false
				break
			}
		}
		if headerEmpty {
			return
		}
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			// Some parseable headers (e.g. containing \r alone) cannot
			// be re-encoded; that is an error, not a panic.
			return
		}
		again, err := ReadCSV("t", &buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		// encoding/csv cannot round-trip rows whose every field is
		// empty (they serialize to blank lines, which readers skip), so
		// only count rows with some content.
		nonEmpty := 0
		for _, r := range tbl.Records {
			for _, v := range r.Values {
				if v != "" {
					nonEmpty++
					break
				}
			}
		}
		if again.Len() < nonEmpty || again.Len() > tbl.Len() {
			t.Fatalf("round trip row count %d outside [%d, %d]", again.Len(), nonEmpty, tbl.Len())
		}
	})
}

// FuzzLoadCSV drives arbitrary CSV bytes through the full load pipeline a
// crawl performs on an ingested local table — parse, tokenize, dedup,
// enrich-column — and checks the loaded table stays internally consistent
// at every step. Where FuzzReadCSV is about serialization round trips,
// this target (like crawler.FuzzLoadResult) is about the invariants
// downstream code relies on: dense record IDs and schema-width rows, which
// the matcher and the enrichment writer index by without bounds checks.
func FuzzLoadCSV(f *testing.F) {
	f.Add("name,city\nThai House,Phoenix\nThai House,Phoenix\nNoodle Bar,Tempe\n")
	f.Add("a\n\n\n")
	f.Add("a,b\nshort\nlong,er,row\n")
	f.Add("\"quoted,comma\",b\nv1,v2\n")
	f.Add("k\n\x00\xff\n")
	f.Add("x,y\n,\n,\n")
	f.Fuzz(func(t *testing.T, s string) {
		tbl, err := ReadCSV("local", strings.NewReader(s))
		if err != nil {
			return
		}
		check := func(stage string) {
			for i, r := range tbl.Records {
				if r.ID != i {
					t.Fatalf("%s: record %d has ID %d (IDs must stay dense)", stage, i, r.ID)
				}
				if len(r.Values) != len(tbl.Schema) {
					t.Fatalf("%s: row %d width %d != schema %d", stage, i, len(r.Values), len(tbl.Schema))
				}
			}
		}
		check("loaded")

		// Tokenization of every loaded record must not panic, and must be
		// stable: the crawler tokenizes local records many times (pool
		// generation, matching) and assumes identical output each time.
		tk := tokenize.New()
		for _, r := range tbl.Records {
			a := strings.Join(r.Tokens(tk), " ")
			r.InvalidateTokens()
			if b := strings.Join(r.Tokens(tk), " "); a != b {
				t.Fatalf("tokenization unstable: %q vs %q", a, b)
			}
		}

		// Dedup reassigns IDs densely and accounts for every dropped row.
		before := tbl.Len()
		dropped := tbl.Dedup(tk)
		if tbl.Len()+dropped != before {
			t.Fatalf("dedup dropped %d of %d but kept %d", dropped, before, tbl.Len())
		}
		check("deduped")

		// The enrichment layer appends crawled attributes to loaded
		// tables; width invariants must survive that too.
		col := tbl.AddColumn("enriched", "")
		if col != len(tbl.Schema)-1 {
			t.Fatalf("AddColumn returned %d, want %d", col, len(tbl.Schema)-1)
		}
		check("enriched")
	})
}

// FuzzReadJSONL checks the JSONL ingester never panics and preserves row
// counts through a write/read round trip.
func FuzzReadJSONL(f *testing.F) {
	f.Add(`{"a":"1"}` + "\n" + `{"a":"2","b":"3"}` + "\n")
	f.Add(`{"x":"y"}`)
	f.Add(`null`)
	f.Add(`[1,2]`)
	f.Add(``)
	f.Add(`{"dup":"1","dup":"2"}`)
	f.Fuzz(func(t *testing.T, s string) {
		tbl, err := ReadJSONL("t", strings.NewReader(s))
		if err != nil {
			return
		}
		for _, r := range tbl.Records {
			if len(r.Values) != len(tbl.Schema) {
				t.Fatalf("row %d width %d != schema %d", r.ID, len(r.Values), len(tbl.Schema))
			}
		}
		var buf bytes.Buffer
		if err := tbl.WriteJSONL(&buf); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		again, err := ReadJSONL("t", &buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if again.Len() != tbl.Len() {
			t.Fatalf("round trip row count %d != %d", again.Len(), tbl.Len())
		}
	})
}
