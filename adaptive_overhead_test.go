// Overhead budget for the adaptive-resilience layer: the deadline is
// threaded through every dispatch as a context, the retry budget takes a
// deposit on every absorbed query, and resilient bookkeeping rides the
// merge stage — all on the hot path of a crawl where nothing ever fails.
// BenchmarkAdaptiveOverhead is the artifact recorded in
// BENCH_adaptive.json; TestAdaptiveOverheadUnderTwoPercent enforces the
// <2% budget in the regular test run using the same interleaved min-of-N
// scheme as the observability, durability, and federation budget tests.
package smartcrawl_test

import (
	"runtime"
	"testing"
	"time"

	"smartcrawl"
)

// crawlAdaptive runs the same budget-48 crawl as simUniverse.crawl with
// the adaptive knobs engaged: a generous never-expiring crawl deadline, a
// per-query timeout, and a retry budget. On this clean simulator none of
// them ever fires — this measures pure plumbing cost.
func (u *simUniverse) crawlAdaptive(tb testing.TB) *smartcrawl.Result {
	tb.Helper()
	u.env.Obs = nil
	c, err := smartcrawl.NewSmartCrawler(u.env, smartcrawl.SmartOptions{
		Sample:       u.smp,
		BatchSize:    8,
		Deadline:     5 * time.Minute,
		QueryTimeout: 30 * time.Second,
		RetryBudget:  0.1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	res, err := c.Run(48)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// BenchmarkAdaptiveOverhead times the same in-process crawl built two
// ways: plain, and with deadline + query timeout + retry budget engaged.
// Coverage must be identical — on a clean run the adaptive machinery is
// invisible by design. Recorded in BENCH_adaptive.json.
func BenchmarkAdaptiveOverhead(b *testing.B) {
	modes := []struct {
		name string
		run  func(u *simUniverse) *smartcrawl.Result
	}{
		{"mode=plain", func(u *simUniverse) *smartcrawl.Result { return u.crawl(b, nil) }},
		{"mode=adaptive", func(u *simUniverse) *smartcrawl.Result { return u.crawlAdaptive(b) }},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			u := newSimUniverse(b)
			b.ResetTimer()
			var covered int
			for i := 0; i < b.N; i++ {
				res := mode.run(u)
				if i == 0 {
					covered = res.CoveredCount
				} else if res.CoveredCount != covered {
					b.Fatalf("coverage drifted between iterations: %d vs %d",
						res.CoveredCount, covered)
				}
			}
			b.ReportMetric(float64(covered), "covered")
		})
	}
}

// TestAdaptiveOverheadUnderTwoPercent enforces the adaptive budget: the
// deadline/timeout/retry-budget crawl must cost at most 2% more
// wall-clock than the plain construction (plus a small absolute allowance
// for timer noise), and must cover exactly the same records — the clean
// run may not even be able to tell the knobs are on.
func TestAdaptiveOverheadUnderTwoPercent(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceDetectorOn {
		t.Skip("timing budget is meaningless under the race detector")
	}
	u := newSimUniverse(t)
	// Warm both paths before timing, and pin the coverage equivalence
	// while at it.
	plain := u.crawl(t, nil)
	adaptive := u.crawlAdaptive(t)
	if plain.CoveredCount != adaptive.CoveredCount {
		t.Fatalf("adaptive crawl covered %d, plain %d — the knobs changed a clean run",
			adaptive.CoveredCount, plain.CoveredCount)
	}

	const rounds = 10
	var lastOff, lastOn time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		minOff, minOn := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < rounds; i++ {
			runtime.GC()
			start := time.Now()
			u.crawl(t, nil)
			if d := time.Since(start); d < minOff {
				minOff = d
			}
			runtime.GC()
			start = time.Now()
			u.crawlAdaptive(t)
			if d := time.Since(start); d < minOn {
				minOn = d
			}
		}
		lastOff, lastOn = minOff, minOn
		if minOn <= minOff+minOff/50+3*time.Millisecond {
			t.Logf("adaptive overhead: plain min %v, adaptive min %v (%.2f%%)",
				minOff, minOn, 100*(float64(minOn)/float64(minOff)-1))
			return
		}
		t.Logf("attempt %d over budget: plain min %v, adaptive min %v — retrying",
			attempt+1, minOff, minOn)
	}
	t.Fatalf("adaptive overhead too high in all attempts: plain min %v, adaptive min %v (%.2f%%)",
		lastOff, lastOn, 100*(float64(lastOn)/float64(lastOff)-1))
}
