package smartcrawl_test

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTool compiles a cmd binary into dir and returns its path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// TestCLIPipeline runs the full command-line workflow: generate a dataset,
// crawl it with the simulated interface, and check the enriched CSV.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	gendata := buildTool(t, dir, "gendata")
	crawlBin := buildTool(t, dir, "smartcrawl")

	// 1. Generate a small DBLP-like dataset.
	out, err := exec.Command(gendata,
		"-kind", "dblp", "-hidden", "2000", "-local", "300",
		"-corpus", "8000", "-seed", "7", "-out", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("gendata: %v\n%s", err, out)
	}
	for _, f := range []string{"dblp_local.csv", "dblp_hidden.csv", "dblp_truth.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}

	// 2. Crawl and enrich with citations.
	enriched := filepath.Join(dir, "enriched.csv")
	out, err = exec.Command(crawlBin,
		"-local", filepath.Join(dir, "dblp_local.csv"),
		"-hidden", filepath.Join(dir, "dblp_hidden.csv"),
		"-budget", "100", "-k", "100", "-rank-column", "3",
		"-theta", "0.02", "-enrich", "citations",
		"-out", enriched).CombinedOutput()
	if err != nil {
		t.Fatalf("smartcrawl: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "records enriched") {
		t.Fatalf("unexpected crawl report:\n%s", out)
	}

	// 3. The enriched CSV must have the new column with real values.
	data, err := os.ReadFile(enriched)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 301 { // header + 300 rows
		t.Fatalf("enriched CSV has %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "h_citations") {
		t.Fatalf("header missing h_citations: %q", lines[0])
	}
	filled := 0
	for _, l := range lines[1:] {
		cols := strings.Split(l, ",")
		if v := cols[len(cols)-1]; v != "" {
			filled++
		}
	}
	if filled < 150 {
		t.Fatalf("only %d/300 rows enriched", filled)
	}
	t.Logf("CLI pipeline enriched %d/300 rows", filled)
}

// TestCLIExperimentsTable2 smoke-tests the experiments tool on its fastest
// subcommand.
func TestCLIExperimentsTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "experiments")
	out, err := exec.Command(bin, "-csv", dir, "table2").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments table2: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "true benefit") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "table2_0.csv")); err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
}

// TestCLICheckpointResume exercises the quota-window workflow through the
// command line: two budget-limited invocations sharing a -checkpoint file
// must make monotone progress.
func TestCLICheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	gendata := buildTool(t, dir, "gendata")
	crawlBin := buildTool(t, dir, "smartcrawl")

	out, err := exec.Command(gendata,
		"-kind", "dblp", "-hidden", "2000", "-local", "300",
		"-corpus", "8000", "-seed", "11", "-out", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("gendata: %v\n%s", err, out)
	}
	ckpt := filepath.Join(dir, "crawl.ckpt")
	runOnce := func() string {
		out, err := exec.Command(crawlBin,
			"-local", filepath.Join(dir, "dblp_local.csv"),
			"-hidden", filepath.Join(dir, "dblp_hidden.csv"),
			"-budget", "6", "-k", "10", "-rank-column", "3",
			"-theta", "0.02", "-enrich", "citations",
			"-checkpoint", ckpt,
			"-out", filepath.Join(dir, "enriched.csv")).CombinedOutput()
		if err != nil {
			t.Fatalf("smartcrawl: %v\n%s", err, out)
		}
		return string(out)
	}
	first := runOnce()
	if !strings.Contains(first, "checkpoint written") {
		t.Fatalf("no checkpoint written:\n%s", first)
	}
	second := runOnce()
	if !strings.Contains(second, "resuming:") {
		t.Fatalf("second run did not resume:\n%s", second)
	}
	e1 := enrichedCount(t, first)
	e2 := enrichedCount(t, second)
	if e2 <= e1 {
		t.Fatalf("no progress across sessions: %d then %d", e1, e2)
	}
	t.Logf("session 1 enriched %d, session 2 enriched %d", e1, e2)
}

func enrichedCount(t *testing.T, out string) int {
	t.Helper()
	// "crawl: N queries issued, X/300 records enriched (..%)"
	i := strings.Index(out, "queries issued, ")
	if i < 0 {
		t.Fatalf("no enrichment line in:\n%s", out)
	}
	rest := out[i+len("queries issued, "):]
	var x, y int
	if _, err := fmt.Sscanf(rest, "%d/%d", &x, &y); err != nil {
		t.Fatalf("parsing %q: %v", rest, err)
	}
	return x
}

// TestCLIRemoteCrawl runs the full remote workflow: hiddenserver serving a
// generated CSV over HTTP, and the smartcrawl CLI crawling it through
// -url with interface-built sampling.
func TestCLIRemoteCrawl(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	gendata := buildTool(t, dir, "gendata")
	serverBin := buildTool(t, dir, "hiddenserver")
	crawlBin := buildTool(t, dir, "smartcrawl")

	out, err := exec.Command(gendata,
		"-kind", "yelp", "-hidden", "2000", "-local", "200",
		"-seed", "13", "-out", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("gendata: %v\n%s", err, out)
	}

	// The server binds :0 itself and announces the bound address — no
	// pick-then-rebind race.
	server := exec.Command(serverBin,
		"-table", filepath.Join(dir, "yelp_hidden.csv"),
		"-k", "50", "-rank-column", "3", "-addr", "127.0.0.1:0")
	stdout, err := server.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = server.Process.Signal(os.Interrupt)
		_, _ = server.Process.Wait()
	}()
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatal("hiddenserver never announced its address")
	}
	go io.Copy(io.Discard, stdout)

	// The announce happens after Listen, so the port is already open —
	// one readiness probe confirms the handler is serving.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("hiddenserver did not become ready")
		}
		time.Sleep(50 * time.Millisecond)
	}

	out, err = exec.Command(crawlBin,
		"-local", filepath.Join(dir, "yelp_local.csv"),
		"-url", "http://"+addr,
		"-budget", "60", "-sample-target", "40",
		"-enrich", "col2,col3", "-fuzzy", "0.6",
		"-out", filepath.Join(dir, "enriched_remote.csv")).CombinedOutput()
	if err != nil {
		t.Fatalf("smartcrawl -url: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "records enriched") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	n := enrichedCount(t, string(out))
	if n == 0 {
		t.Fatalf("remote crawl enriched nothing:\n%s", out)
	}
	t.Logf("remote crawl enriched %d/200 records", n)

	// The crawl drove real traffic through the server, so its Prometheus
	// endpoint must now expose nonzero serving counters.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	if !strings.Contains(metrics, "# TYPE smartcrawl_queries_issued_total counter") {
		t.Errorf("/metrics missing queries_issued family:\n%.400s", metrics)
	}
	if strings.Contains(metrics, "smartcrawl_queries_issued_total 0\n") {
		t.Errorf("/metrics shows zero served queries after a crawl:\n%.400s", metrics)
	}
	if !strings.Contains(metrics, "smartcrawl_search_latency_seconds_bucket{le=\"+Inf\"}") {
		t.Errorf("/metrics missing latency histogram:\n%.400s", metrics)
	}
}

// TestCrawldMetricsEndpoint boots the real crawld binary and scrapes
// GET /metrics: the daemon families must render in Prometheus text
// format even before any job is submitted.
func TestCrawldMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	crawld := buildTool(t, dir, "crawld")

	daemon := exec.Command(crawld, "-data", filepath.Join(dir, "data"), "-addr", "127.0.0.1:0")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = daemon.Process.Signal(os.Interrupt)
		_, _ = daemon.Process.Wait()
	}()
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "crawld listening on "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatal("crawld never announced its address")
	}
	go io.Copy(io.Discard, stdout)

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == 200 {
				metrics := string(body)
				for _, want := range []string{
					"# TYPE crawld_jobs gauge",
					`crawld_jobs{state="queued"} 0`,
					`crawld_jobs{state="running"} 0`,
					"crawld_draining 0",
					"crawld_tenant_budget_cap_queries 0",
				} {
					if !strings.Contains(metrics, want) {
						t.Errorf("/metrics missing %q in:\n%.600s", want, metrics)
					}
				}
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("crawld /metrics never became ready")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
